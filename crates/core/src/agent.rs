//! The agent program (paper §4.5): the central coordinator between the
//! fuzzer, the fuzz-harness VM, and the target L0 hypervisor.
//!
//! Per test case the agent: applies the vCPU configuration (switching
//! the host image through the [`ExecutionEngine`] when it changed),
//! embeds the fuzzing input into the executor, runs the two harness
//! phases, collects coverage into the AFL bitmap, monitors the
//! sanitizers/kernel log for anomalies, saves crashing inputs, and
//! restarts the host through the watchdog when it died.
//!
//! The hot path is delegated to the engine: instead of rebuilding the
//! hypervisor and re-deriving boot state each iteration, the engine
//! restores cached boot snapshots (see [`crate::engine`]) — and instead
//! of allocating a fresh bitmap, line set, and trace per execution, the
//! engine's [`nf_coverage::ExecScratch`] is recycled:
//! [`Agent::run_iteration`] returns an [`IterationResult`] that
//! *borrows* the scratch buffers, valid until the next iteration.
//! [`Agent::run_iteration_alloc`] keeps the original allocating
//! sequence callable as the compat reference of the `hotpath` bench and
//! the `hotpath_equivalence` suite.

use std::sync::Arc;

use nf_coverage::LineSet;
use nf_fuzz::{ExecFeedback, FuzzInput, MAP_SIZE};
use nf_hv::{CrashKind, FaultPlan, HvConfig, L0Hypervisor, SharedFaults, DEFAULT_WATCHDOG_FUEL};
use nf_vmx::VmxCapabilities;
use nf_x86::CpuVendor;

use nf_fuzz::scenario::{prefix_extend, prefix_extend_u64, prefix_root};

use crate::configurator::VcpuConfigurator;
use crate::engine::{EngineMode, EngineStats, ExecutionEngine};
use crate::harness::{ExecEvent, ExecObserver, ExecPhase, ExecutionHarness, InitPlan, NopObserver};
use crate::input::InputView;
use crate::triage::CrashTriage;
use crate::validator::VmStateValidator;

/// Canonical prefix-hash discriminant framing a runtime step record
/// (init steps use their own 0–11 discriminants; see
/// [`crate::harness::InitStep::fold_prefix`]).
const RUNTIME_UNIT_TAG: u64 = 12;

/// Component toggles for the ablation study (paper §5.3, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentMask {
    /// VM execution harness: template order/argument/repetition mutation.
    pub harness: bool,
    /// VM state validator: round + oracle + selective invalidation.
    pub validator: bool,
    /// vCPU configurator: feature bit-array mutation.
    pub configurator: bool,
}

impl ComponentMask {
    /// Everything on ("with ALL").
    pub const ALL: ComponentMask = ComponentMask {
        harness: true,
        validator: true,
        configurator: true,
    };
    /// Everything off ("w/o ALL").
    pub const NONE: ComponentMask = ComponentMask {
        harness: false,
        validator: false,
        configurator: false,
    };
}

/// A vulnerability discovery record (the saved, timestamped report of
/// §4.5 — virtual time stands in for the timestamp).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugFind {
    /// Stable bug identifier (matches the Table 6 seeds).
    pub bug_id: String,
    /// Detector that fired.
    pub kind: CrashKind,
    /// Diagnostic message.
    pub message: String,
    /// Execution index at which the bug was first seen.
    pub exec: u64,
    /// The input that triggered it (saved for reproduction). Shared:
    /// when one execution fires several detectors, the input is cloned
    /// once and every report holds the same buffer.
    pub input: Arc<FuzzInput>,
}

/// Result of one fuzzing iteration, borrowing the engine's reusable
/// [`nf_coverage::ExecScratch`] — valid until the next iteration on the
/// same agent. The allocating twin is [`AllocIterationResult`].
#[derive(Debug)]
pub struct IterationResult<'a> {
    /// AFL bitmap of the execution.
    pub bitmap: &'a [u8],
    /// Line coverage of this execution alone (corpus-entry evidence).
    pub lines: &'a LineSet,
    /// Feedback for the engine.
    pub feedback: ExecFeedback,
}

/// Owned result of one fuzzing iteration, produced by the compat
/// allocating path ([`Agent::run_iteration_alloc`]).
#[derive(Debug)]
pub struct AllocIterationResult {
    /// AFL bitmap of the execution.
    pub bitmap: Vec<u8>,
    /// Line coverage of this execution alone.
    pub lines: LineSet,
    /// Feedback for the engine.
    pub feedback: ExecFeedback,
}

/// The agent: owns the execution engine and the per-campaign state.
pub struct Agent {
    engine: ExecutionEngine,
    vendor: CpuVendor,
    harness: ExecutionHarness,
    configurator: VcpuConfigurator,
    mask: ComponentMask,
    execs: u64,
    restarts: u64,
    /// Cumulative covered lines (across reboots and reconfigurations).
    pub cumulative: LineSet,
    /// The crash-triage index: saved vulnerability reports,
    /// deduplicated by bug id, in discovery order.
    triage: CrashTriage,
    /// Reusable rolling prefix-hash chain of the current execution
    /// (`chain[k]` = hash after `k` scenario units; prefix mode only).
    chain: Vec<u64>,
    /// Reusable event log of the current execution (prefix mode only):
    /// what a boundary capture records, and what a restore replays.
    events: Vec<ExecEvent>,
    /// The engine's shared fault injector, when a plan is installed:
    /// the agent opens every execution on it (exec index + input
    /// digest), which is what keeps the fault schedule a pure function
    /// of the campaign position.
    faults: Option<SharedFaults>,
    /// Per-exec instruction-fuel budget of the exec watchdog.
    watchdog_fuel: u64,
}

impl Agent {
    /// Creates an agent fuzzing the hypervisor produced by `factory`,
    /// on the default (snapshot) engine.
    pub fn new(
        factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
        vendor: CpuVendor,
        mask: ComponentMask,
    ) -> Self {
        Agent::with_engine(factory, vendor, mask, EngineMode::Snapshot)
    }

    /// Creates an agent with an explicit engine mode (`--engine` A/B).
    pub fn with_engine(
        factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
        vendor: CpuVendor,
        mask: ComponentMask,
        mode: EngineMode,
    ) -> Self {
        let configurator = VcpuConfigurator::new(vendor);
        let (features, nested) = configurator.default_config();
        let config = HvConfig {
            vendor,
            features,
            nested,
        };
        let caps = VmxCapabilities::from_features(
            nf_x86::FeatureSet::default_for(vendor).sanitized(vendor),
        );
        let engine = ExecutionEngine::new(factory, config, caps, mode);
        let cumulative = LineSet::for_map(engine.hv().coverage_map());
        Agent {
            engine,
            vendor,
            harness: ExecutionHarness::new(vendor),
            configurator,
            mask,
            execs: 0,
            restarts: 0,
            cumulative,
            triage: CrashTriage::new(),
            chain: Vec::new(),
            events: Vec::new(),
            faults: None,
            watchdog_fuel: DEFAULT_WATCHDOG_FUEL,
        }
    }

    /// Installs a deterministic fault plan (`--fault-plan`): the engine
    /// builds the shared injector, hands it to every hypervisor
    /// instance, and the agent opens each execution on it.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.engine.set_fault_plan(plan);
        self.faults = self.engine.faults();
        self
    }

    /// Sets the exec watchdog's per-execution instruction-fuel budget
    /// (`--watchdog-fuel`; [`DEFAULT_WATCHDOG_FUEL`] by default). Only
    /// consulted when a fault plan is installed — the injector is the
    /// fuel meter.
    pub fn with_watchdog_fuel(mut self, fuel: u64) -> Self {
        self.watchdog_fuel = fuel;
        self
    }

    /// Total injected faults fired so far as `(hangs, host deaths)` —
    /// zero when no plan is installed.
    pub fn faults_fired(&self) -> (u64, u64) {
        match &self.faults {
            Some(f) => {
                let f = f.borrow();
                (f.hangs_fired, f.deaths_fired)
            }
            None => (0, 0),
        }
    }

    /// Enables (or disables) the engine's mid-scenario snapshot trie
    /// (`--prefix-cache`). Requires the snapshot engine; the builder
    /// delegates to [`ExecutionEngine::set_prefix_cache`].
    pub fn with_prefix_cache(mut self, enabled: bool) -> Self {
        self.engine.set_prefix_cache(enabled);
        self
    }

    /// Bounds the engine's booted-image cache (`--cache-capacity`).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.engine.set_cache_capacity(capacity);
        self
    }

    /// Sets the prefix trie's byte budget (tests: adversarial eviction).
    pub fn with_prefix_budget(mut self, bytes: usize) -> Self {
        self.engine.set_prefix_budget(bytes);
        self
    }

    /// Sets the prefix capture threshold (`1` = snapshot at every
    /// scenario boundary).
    pub fn with_prefix_threshold(mut self, threshold: u32) -> Self {
        self.engine.set_prefix_threshold(threshold);
        self
    }

    /// Selects the prefix trie's snapshot store (benches: the CoW /
    /// deep-copy A/B).
    pub fn with_prefix_store(mut self, mode: crate::engine::PrefixStoreMode) -> Self {
        self.engine.set_prefix_store(mode);
        self
    }

    /// The hypervisor under test (for inspection in tests/benches).
    pub fn hv(&self) -> &dyn L0Hypervisor {
        self.engine.hv()
    }

    /// The guest-visible architectural state after the last iteration —
    /// the final-state half of the differential oracle's canonical
    /// observation (see [`nf_hv::GuestObservation`]).
    pub fn observe_guest(&self) -> nf_hv::GuestObservation {
        self.engine.hv().observe_guest()
    }

    /// The validator (exposes the oracle-correction state).
    pub fn validator(&self) -> &VmStateValidator {
        self.engine.validator()
    }

    /// The engine's hot-path counters (cache hits, restores, …).
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Number of executions performed.
    pub fn execs(&self) -> u64 {
        self.execs
    }

    /// Number of watchdog restarts.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// The crash-triage index (unique finds in discovery order).
    pub fn triage(&self) -> &CrashTriage {
        &self.triage
    }

    /// Mutable triage access — checkpoint resume replays the persisted
    /// find records back into the index.
    pub fn triage_mut(&mut self) -> &mut CrashTriage {
        &mut self.triage
    }

    /// Restores the lifetime counters from a checkpoint. The exec
    /// index drives the watchdog-restart schedule and the fault
    /// injector's exec-indexed draws, so resume continuity depends on
    /// it.
    pub fn restore_counters(&mut self, execs: u64, restarts: u64) {
        self.execs = execs;
        self.restarts = restarts;
    }

    /// Restores the fault injector's fire counters from a checkpoint,
    /// so the campaign's final [`crate::campaign::FaultCounters`] keep
    /// counting from where the interrupted run stood. A no-op without
    /// an installed plan.
    pub fn restore_faults_fired(&mut self, hangs: u64, deaths: u64) {
        if let Some(faults) = &self.faults {
            let mut f = faults.borrow_mut();
            f.hangs_fired = hangs;
            f.deaths_fired = deaths;
        }
    }

    /// Re-learns persisted oracle corrections into the validator
    /// (checkpoint resume): each `(rule, detail)` pair re-applies its
    /// state fix and re-records the correction, so post-resume
    /// generation matches the interrupted run's. Unknown rules are
    /// ignored (forward compatibility).
    pub fn restore_corrections(&mut self, corrections: &[(String, String)]) {
        let v = self.engine.validator_mut();
        for (rule, detail) in corrections {
            v.restore_correction(rule, detail.clone());
        }
    }

    /// Coverage fraction of the vendor-matching nested file.
    pub fn coverage_fraction(&self) -> f64 {
        let hv = self.engine.hv();
        let map = hv.coverage_map();
        let file = match self.vendor {
            CpuVendor::Intel => hv.intel_file(),
            CpuVendor::Amd => match hv.amd_file() {
                Some(f) => f,
                None => hv.intel_file(),
            },
        };
        self.cumulative.fraction_of(map, file)
    }

    /// Runs one fuzzing iteration with `input` on the zero-allocation
    /// hot path: coverage lands in the engine's reusable scratch and
    /// the returned [`IterationResult`] borrows it (valid until the
    /// next iteration).
    pub fn run_iteration(&mut self, input: &FuzzInput) -> IterationResult<'_> {
        self.run_iteration_with(input, &mut NopObserver)
    }

    /// [`run_iteration`](Self::run_iteration) with an [`ExecObserver`]
    /// watching the harness-visible events of the execution — the
    /// differential oracle's recording hook. The observed and plain
    /// paths are the same monomorphized code (the plain path passes
    /// [`NopObserver`]), so coverage, triage, and feedback are
    /// bit-identical whether or not an observer is attached.
    pub fn run_iteration_with<O: ExecObserver>(
        &mut self,
        input: &FuzzInput,
        observer: &mut O,
    ) -> IterationResult<'_> {
        self.execute(input, observer);

        // 6. Coverage collection, allocation-free: targeted bitmap
        // wipe + trace swap + in-place line accounting.
        self.engine.collect_coverage();
        self.cumulative.union_with(&self.engine.scratch().lines);

        // 7. Anomaly detection.
        let feedback = self.drain_reports(input);

        let scratch = self.engine.scratch();
        IterationResult {
            bitmap: &scratch.bitmap,
            lines: &scratch.lines,
            feedback,
        }
    }

    /// The original allocating iteration — the "before" the `hotpath`
    /// bench measures against and the oracle `tests/hotpath_equivalence.rs`
    /// replays. Semantically bit-identical to [`Agent::run_iteration`]
    /// (same executions, same coverage, same triage); it differs only
    /// in buffer handling: a fresh trace, bitmap, and line set per
    /// call.
    pub fn run_iteration_alloc(&mut self, input: &FuzzInput) -> AllocIterationResult {
        self.execute(input, &mut NopObserver);

        // 6. Coverage collection, one fresh buffer per exec (the
        // pre-scratch sequence).
        let trace = self.engine.hv_mut().take_trace();
        let map = self.engine.hv().coverage_map();
        let mut lines = LineSet::for_map(map);
        lines.add_trace(map, &trace);
        self.cumulative.union_with(&lines);
        let mut bitmap = vec![0u8; MAP_SIZE];
        trace.fill_afl_bitmap(&mut bitmap);

        // 7. Anomaly detection.
        let feedback = self.drain_reports(input);

        AllocIterationResult {
            bitmap,
            lines,
            feedback,
        }
    }

    /// Steps 1–5 of the iteration loop: watchdog, vCPU configuration,
    /// harness-VM generation, init phase, runtime phase. Shared by the
    /// scratch and compat collection paths.
    fn execute<O: ExecObserver>(&mut self, input: &FuzzInput, observer: &mut O) {
        self.execs += 1;
        let view = InputView::new(input);

        // 1. Watchdog: a dead host is restarted before the next test
        // case, whatever else this iteration changes (paper §3.2). This
        // is the slow path — a modeled power-cycle.
        if self.engine.hv().health().dead {
            self.engine.reboot();
            self.restarts += 1;
        }

        // 1b. Open the execution on the fault injector: the agent's own
        // exec counter indexes schedule-driven faults (so a resumed
        // campaign continues the schedule exactly) and the input's
        // content digest indexes hangs (so a hanging input hangs again
        // on replay). Also re-arms the exec watchdog's fuel budget.
        if let Some(faults) = &self.faults {
            faults
                .borrow_mut()
                .begin_exec(self.execs, input_digest(input), self.watchdog_fuel);
        }

        // 2. vCPU configuration. The engine services a changed config
        // from its booted-image cache (snapshot mode) or through the
        // factory (rebuild mode), and resets guest state either way.
        let (features, nested) = if self.mask.configurator {
            self.configurator.generate(view.vcpu_cfg())
        } else {
            self.configurator.default_config()
        };
        let config = HvConfig {
            vendor: self.vendor,
            features,
            nested,
        };
        self.engine.prepare(&config);

        // 3. Generate the fuzz-harness VM content.
        let revision = VmxCapabilities::REVISION;
        let (vmcs12, msr_area, vmcb12) = if self.mask.validator {
            let validator = self.engine.validator_mut();
            let (vmcs, area) =
                validator.generate(view.vmcs_seed(), view.mutate_bytes(), view.msr_area_bytes());
            let vmcb = validator.generate_vmcb(view.vmcs_seed(), view.mutate_bytes());
            (vmcs, area, vmcb)
        } else {
            // Ablation: the golden template with a few raw overwrites
            // from the input (harness argument mutation only).
            let caps = VmxCapabilities::from_features(features);
            let mut vmcs = nf_silicon::golden_vmcs(&caps);
            let seed = view.vmcs_seed();
            for i in 0..4usize {
                let idx =
                    seed.get(i * 3).copied().unwrap_or(0) as usize % nf_vmx::VmcsField::ALL.len();
                let field = nf_vmx::VmcsField::ALL[idx];
                let value = u64::from_le_bytes([
                    seed.get(i * 3 + 1).copied().unwrap_or(0),
                    seed.get(i * 3 + 2).copied().unwrap_or(0),
                    0,
                    0,
                    0,
                    0,
                    0,
                    0,
                ]);
                vmcs.write(field, value);
            }
            let area = VmStateValidator::raw_msr_area(view.msr_area_bytes(), 1);
            let mut vmcb = nf_silicon::golden_vmcb();
            if let Some(&b) = seed.first() {
                vmcb.save.cr0 ^= (b as u64) << 28;
            }
            (vmcs, area, vmcb)
        };

        // 4. Initialization phase.
        let plan = if self.mask.harness {
            self.harness.mutated_plan(revision, view.init_bytes())
        } else {
            self.harness.canonical_plan(revision)
        };
        // Fixed runtime template for the harness ablation: a
        // deterministic exit mix.
        const FIXED: [u8; 24] = [
            0, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 4, 0, 0, 0, 13, 0, 0, 0, 14, 0, 0, 0,
        ];
        let runtime_bytes: &[u8] = if self.mask.harness {
            view.runtime_bytes()
        } else {
            &FIXED
        };

        if self.engine.prefix_enabled() {
            // Prefix-cached steps 4–5: restore the deepest cached
            // ancestor and execute only the suffix.
            self.execute_prefixed(
                &config,
                &plan,
                &vmcs12,
                &vmcb12,
                &msr_area,
                runtime_bytes,
                observer,
            );
            return;
        }

        let init = self.harness.run_init_observed(
            self.engine.hv_mut(),
            &plan,
            &vmcs12,
            &vmcb12,
            &msr_area,
            observer,
        );

        // 5. Runtime phase.
        if !init.host_dead {
            self.harness.run_runtime_observed(
                self.engine.hv_mut(),
                runtime_bytes,
                init.l2_live,
                observer,
            );
        }
    }

    /// Prefix-cached execution of the harness phases: builds the
    /// scenario's rolling prefix-hash chain, restores the deepest
    /// cached ancestor from the engine's snapshot trie (replaying its
    /// recorded events into `observer`), executes only the remaining
    /// suffix through the same per-unit harness kernels the full-replay
    /// loops use, and notes each crossed boundary so hot prefixes get
    /// captured.
    ///
    /// Bit-identity with the full-replay path is structural: the unit
    /// kernels ([`ExecutionHarness::exec_init_step`],
    /// [`ExecutionHarness::exec_runtime_step`]) and the phase machine
    /// ([`ExecPhase::apply`]) are shared, a restored node's key covers
    /// the entire execution context up to its boundary, and the event
    /// replay fires exactly the hooks live execution fired.
    #[allow(clippy::too_many_arguments)]
    fn execute_prefixed<O: ExecObserver>(
        &mut self,
        config: &HvConfig,
        plan: &InitPlan,
        vmcs12: &nf_vmx::Vmcs,
        vmcb12: &nf_vmx::Vmcb,
        msr_area: &nf_vmx::MsrArea,
        runtime_bytes: &[u8],
        observer: &mut O,
    ) {
        use nf_fuzz::InputLayout;

        // Root hash: everything that shapes execution before the first
        // scenario unit. The generated-image digests make the root (and
        // with it every node key) sensitive to validator corrections —
        // a learned correction changes the images, so stale nodes
        // become unreachable rather than wrong.
        let mut h = prefix_root();
        h = prefix_extend_u64(
            h,
            match self.vendor {
                CpuVendor::Intel => 0,
                CpuVendor::Amd => 1,
            },
        );
        h = prefix_extend_u64(h, config.features.0 as u64);
        h = prefix_extend_u64(h, config.nested as u64);
        h = prefix_extend_u64(h, nf_hv::GuestObservation::digest_vmcs(vmcs12));
        h = prefix_extend_u64(h, nf_hv::GuestObservation::digest_vmcb(vmcb12));
        h = prefix_extend_u64(h, msr_area.entries.len() as u64);
        for entry in &msr_area.entries {
            h = prefix_extend_u64(h, entry.index as u64);
            h = prefix_extend_u64(h, entry.value);
        }

        // The chain: one hash per scenario boundary.
        self.chain.clear();
        self.chain.push(h);
        for step in &plan.steps {
            h = step.fold_prefix(h);
            self.chain.push(h);
        }
        for chunk in runtime_bytes.chunks(InputLayout::STEP_BYTES) {
            h = prefix_extend_u64(h, RUNTIME_UNIT_TAG);
            h = prefix_extend(h, chunk);
            self.chain.push(h);
        }

        // Restore the deepest cached ancestor (if any) and replay its
        // recorded events — the observer stream must be bit-identical
        // to a full replay.
        self.events.clear();
        let (mut phase, start) = match self.engine.prefix_restore(&self.chain) {
            Some(idx) => {
                for event in self.engine.prefix_node_events(idx) {
                    event.replay(observer);
                    self.events.push(event.clone());
                }
                (
                    self.engine.prefix_node_phase(idx),
                    self.engine.prefix_node_depth(idx),
                )
            }
            None => (ExecPhase::boot(), 0),
        };

        // Execute the suffix through the shared per-unit kernels.
        let harness = self.harness;
        let init_len = plan.steps.len();
        let total = self.chain.len() - 1;
        let mut unit = start;
        while unit < total && !phase.host_dead {
            let event = if unit < init_len {
                ExecEvent::Init(harness.exec_init_step(
                    self.engine.hv_mut(),
                    plan.steps[unit],
                    vmcs12,
                    vmcb12,
                    msr_area,
                ))
            } else {
                let off = (unit - init_len) * InputLayout::STEP_BYTES;
                let end = (off + InputLayout::STEP_BYTES).min(runtime_bytes.len());
                harness.exec_runtime_step(
                    self.engine.hv_mut(),
                    &runtime_bytes[off..end],
                    phase.l2_live,
                )
            };
            event.replay(observer);
            phase.apply(&event);
            self.events.push(event);
            unit += 1;
            // A boundary past a host death is not a resumable prefix:
            // execution stops here, exactly like the full-replay loops.
            if !phase.host_dead {
                self.engine
                    .prefix_note_boundary(self.chain[unit], unit, phase, &self.events);
            }
        }
    }

    /// Drains sanitizer/log reports into the triage index (O(1) dedup
    /// by bug id, first-seen provenance) without an intermediate
    /// collect: the report vector is moved out whole (the health side
    /// gets the empty one back — no allocation on the crash-free
    /// steady state) and the triggering input is cloned *once* and
    /// shared across every report of the execution.
    fn drain_reports(&mut self, input: &FuzzInput) -> ExecFeedback {
        let health = self.engine.hv_mut().health_mut();
        if health.reports.is_empty() {
            return ExecFeedback { crashed: false };
        }
        let mut reports = std::mem::take(&mut health.reports);
        let shared = Arc::new(input.clone());
        for report in reports.drain(..) {
            self.triage.record(BugFind {
                bug_id: report.bug_id.to_string(),
                kind: report.kind,
                message: report.message,
                exec: self.execs,
                input: Arc::clone(&shared),
            });
        }
        ExecFeedback { crashed: true }
    }

    /// Fast-forwards the validator to its converged state: every
    /// oracle correction a long campaign learns (the CR4.PAE quirk and
    /// both seeded Bochs bugs) is applied up front, with matching
    /// `Correction` records so the engine's validator pool propagates
    /// them across configuration flips.
    ///
    /// Crash inputs are saved mid-campaign, where (some of) these
    /// corrections were already learned — the generated harness VM
    /// depends on them. Replay tooling ([`crate::triage::ReplayOracle`])
    /// uses this to reconstruct that first-seen context.
    pub fn converge_validator(&mut self) {
        let v = self.engine.validator_mut();
        v.apply_known_quirk();
        v.apply_ss_rpl_fix();
        v.apply_tr_type_fix();
        for rule in ["cr4_pae_quirk", "guest.ss_rpl", "tr_type_legacy"] {
            v.corrections.push(crate::validator::Correction {
                rule,
                detail: "assumed converged for replay".into(),
            });
        }
    }
}

/// FNV-1a content digest of a fuzz input — the hang-fault index, so it
/// must depend on nothing but the bytes.
fn input_digest(input: &FuzzInput) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in &input.bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl VmStateValidator {
    /// Rebuilds a validator for new capabilities while *keeping* the
    /// corrections already learned from the oracle (the model, not the
    /// configuration, is what was corrected).
    pub fn with_corrections_of(caps: VmxCapabilities, previous: &VmStateValidator) -> Self {
        let mut v = VmStateValidator::new(caps);
        for c in &previous.corrections {
            match c.rule {
                "cr4_pae_quirk" => v.apply_known_quirk(),
                "guest.ss_rpl" => v.apply_ss_rpl_fix(),
                "tr_type_legacy" => v.apply_tr_type_fix(),
                _ => {}
            }
        }
        v.corrections = previous.corrections.clone();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_hv::Vkvm;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn agent(vendor: CpuVendor, mask: ComponentMask) -> Agent {
        Agent::new(Box::new(|cfg| Box::new(Vkvm::new(cfg))), vendor, mask)
    }

    #[test]
    fn iteration_produces_coverage() {
        let mut a = agent(CpuVendor::Intel, ComponentMask::ALL);
        let mut rng = SmallRng::seed_from_u64(1);
        let input = FuzzInput::random(&mut rng);
        let result = a.run_iteration(&input);
        assert!(
            result.bitmap.iter().any(|&b| b != 0),
            "trace must project to the bitmap"
        );
        assert!(a.coverage_fraction() > 0.0);
    }

    #[test]
    fn coverage_accumulates_monotonically() {
        let mut a = agent(CpuVendor::Intel, ComponentMask::ALL);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut last = 0.0;
        for _ in 0..50 {
            a.run_iteration(&FuzzInput::random(&mut rng));
            let now = a.coverage_fraction();
            assert!(now >= last, "cumulative coverage cannot drop");
            last = now;
        }
        assert!(
            last > 0.3,
            "50 boundary-state iterations should cover >30%, got {last}"
        );
    }

    #[test]
    fn ablated_agent_covers_less() {
        let mut rng = SmallRng::seed_from_u64(3);
        let inputs: Vec<FuzzInput> = (0..60).map(|_| FuzzInput::random(&mut rng)).collect();
        let mut full = agent(CpuVendor::Intel, ComponentMask::ALL);
        let mut none = agent(CpuVendor::Intel, ComponentMask::NONE);
        for input in &inputs {
            full.run_iteration(input);
            none.run_iteration(input);
        }
        assert!(
            full.coverage_fraction() > none.coverage_fraction(),
            "with ALL {:.3} must beat w/o ALL {:.3}",
            full.coverage_fraction(),
            none.coverage_fraction()
        );
    }

    #[test]
    fn finds_are_deduplicated() {
        // Drive vkvm's CVE directly: EPT off via configurator bytes is
        // fiddly, so use many random inputs and rely on dedup semantics.
        let mut a = agent(CpuVendor::Intel, ComponentMask::ALL);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..300 {
            a.run_iteration(&FuzzInput::random(&mut rng));
        }
        let mut ids: Vec<&str> = a.triage().iter().map(|f| f.bug_id.as_str()).collect();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "find list must be id-unique");
    }

    #[test]
    fn snapshot_and_rebuild_agents_are_bit_identical() {
        let mut rng = SmallRng::seed_from_u64(6);
        let inputs: Vec<FuzzInput> = (0..150).map(|_| FuzzInput::random(&mut rng)).collect();
        let mk = |mode| {
            Agent::with_engine(
                Box::new(|cfg| Box::new(Vkvm::new(cfg))),
                CpuVendor::Intel,
                ComponentMask::ALL,
                mode,
            )
        };
        let mut snap = mk(EngineMode::Snapshot);
        let mut rebuild = mk(EngineMode::Rebuild);
        for (i, input) in inputs.iter().enumerate() {
            let a = snap.run_iteration(input);
            let b = rebuild.run_iteration(input);
            assert_eq!(a.bitmap, b.bitmap, "bitmap diverged at exec {i}");
            assert_eq!(a.feedback.crashed, b.feedback.crashed, "exec {i}");
        }
        assert_eq!(snap.triage(), rebuild.triage());
        assert_eq!(snap.restarts(), rebuild.restarts());
        assert_eq!(snap.coverage_fraction(), rebuild.coverage_fraction());
        let stats = snap.engine_stats();
        assert!(stats.snapshot_restores > 0, "fast path must be exercised");
        assert!(
            stats.cache_hits > 0,
            "config churn must hit the image cache: {stats:?}"
        );
    }

    #[test]
    fn identical_caps_share_the_validator_across_config_flips() {
        // Regression: validator corrections used to be recomputed from
        // scratch on every config change even when the VmxCapabilities
        // were identical. The engine memoizes; nested-only flips (same
        // caps) must leave the validator untouched.
        let mut a = agent(CpuVendor::Intel, ComponentMask::ALL);
        let mut input = FuzzInput::zeroed();
        for i in 0..20 {
            // Byte 4 of the vCPU config word holds the keep-base bits
            // (32..35) and the nested bits (36..39): 0x11 = VMX kept +
            // nested on, 0x01 = VMX kept + nested off. Features — and
            // therefore capabilities — never change.
            input.bytes[crate::input::InputLayout::VCPU_CFG.offset + 4] =
                if i % 2 == 0 { 0x11 } else { 0x01 };
            a.run_iteration(&input);
        }
        let stats = a.engine_stats();
        assert_eq!(
            stats.validator_rebuilds, 1,
            "only the initial flip away from the default features may \
             rebuild: {stats:?}"
        );
        assert!(
            stats.validator_reuses >= 19,
            "same-caps flips must reuse the validator: {stats:?}"
        );
    }

    #[test]
    fn scratch_and_alloc_iterations_are_bit_identical() {
        // The borrowed (scratch) path and the compat allocating path
        // must produce the same bitmaps, lines, feedback, and triage —
        // the invariant `tests/hotpath_equivalence.rs` scales up to
        // whole campaign grids.
        let mut rng = SmallRng::seed_from_u64(8);
        let inputs: Vec<FuzzInput> = (0..120).map(|_| FuzzInput::random(&mut rng)).collect();
        let mut scratch = agent(CpuVendor::Intel, ComponentMask::ALL);
        let mut alloc = agent(CpuVendor::Intel, ComponentMask::ALL);
        for (i, input) in inputs.iter().enumerate() {
            let b = alloc.run_iteration_alloc(input);
            let a = scratch.run_iteration(input);
            assert_eq!(a.bitmap, &b.bitmap[..], "bitmap diverged at exec {i}");
            assert_eq!(a.lines, &b.lines, "lines diverged at exec {i}");
            assert_eq!(a.feedback.crashed, b.feedback.crashed, "exec {i}");
        }
        assert_eq!(scratch.triage(), alloc.triage());
        assert_eq!(scratch.restarts(), alloc.restarts());
        assert_eq!(scratch.coverage_fraction(), alloc.coverage_fraction());
    }

    #[test]
    fn multi_report_exec_shares_one_input_buffer() {
        // One execution can fire several detectors; the drain must
        // clone the triggering input once and share it across every
        // saved find (Arc), not clone per report.
        let mut a = agent(CpuVendor::Intel, ComponentMask::ALL);
        for (id, kind) in [
            ("bug-a", nf_hv::CrashKind::Ubsan),
            ("bug-b", nf_hv::CrashKind::Kasan),
        ] {
            a.engine
                .hv_mut()
                .health_mut()
                .reports
                .push(nf_hv::CrashReport {
                    kind,
                    bug_id: id,
                    message: format!("report {id}"),
                });
        }
        let input = FuzzInput::zeroed();
        let feedback = a.drain_reports(&input);
        assert!(feedback.crashed);
        let finds = a.triage().finds();
        assert_eq!(finds.len(), 2);
        assert!(
            std::sync::Arc::ptr_eq(&finds[0].input, &finds[1].input),
            "both finds must hold the same shared buffer"
        );
        assert_eq!(*finds[0].input, input);
        // The health vector was moved out whole; steady state is clean.
        assert!(a.engine.hv().health().reports.is_empty());
        assert!(!a.drain_reports(&input).crashed);
    }

    #[test]
    fn amd_agent_runs() {
        let mut a = agent(CpuVendor::Amd, ComponentMask::ALL);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..40 {
            a.run_iteration(&FuzzInput::random(&mut rng));
        }
        assert!(a.coverage_fraction() > 0.2, "got {}", a.coverage_fraction());
    }
}
