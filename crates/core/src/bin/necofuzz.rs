//! The `necofuzz` command-line fuzzer.
//!
//! ```text
//! necofuzz [--target vkvm|vxen|vvbox] [--vendor intel|amd]
//!          [--hours N] [--execs-per-hour N] [--seed N] [--guided]
//!          [--no-harness] [--no-validator] [--no-configurator]
//!          [--out DIR]
//! ```
//!
//! Runs one campaign against the chosen hypervisor model and, like the
//! paper's agent (§4.5), saves every unique crashing input to a
//! timestamped file under `--out` for later reproduction.

use std::io::Write as _;

use necofuzz::campaign::{run_campaign, CampaignConfig};
use necofuzz::ComponentMask;
use nf_fuzz::Mode;
use nf_hv::{HvConfig, L0Hypervisor, Vkvm, Vvbox, Vxen};
use nf_x86::CpuVendor;

fn usage() -> ! {
    eprintln!(
        "usage: necofuzz [--target vkvm|vxen|vvbox] [--vendor intel|amd] [--hours N]\n\
         \x20               [--execs-per-hour N] [--seed N] [--guided] [--no-harness]\n\
         \x20               [--no-validator] [--no-configurator] [--out DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let mut target = "vkvm".to_string();
    let mut vendor = CpuVendor::Intel;
    let mut hours = 24u32;
    let mut execs_per_hour = 250u32;
    let mut seed = 0u64;
    let mut mode = Mode::Unguided;
    let mut mask = ComponentMask::ALL;
    let mut out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--target" => target = value(),
            "--vendor" => {
                vendor = match value().as_str() {
                    "intel" => CpuVendor::Intel,
                    "amd" => CpuVendor::Amd,
                    _ => usage(),
                }
            }
            "--hours" => hours = value().parse().unwrap_or_else(|_| usage()),
            "--execs-per-hour" => execs_per_hour = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--guided" => mode = Mode::Guided,
            "--no-harness" => mask.harness = false,
            "--no-validator" => mask.validator = false,
            "--no-configurator" => mask.configurator = false,
            "--out" => out = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>> = match target.as_str() {
        "vkvm" => Box::new(|c| Box::new(Vkvm::new(c))),
        "vxen" => Box::new(|c| Box::new(Vxen::new(c))),
        "vvbox" => {
            if vendor != CpuVendor::Intel {
                eprintln!("vvbox supports only --vendor intel");
                std::process::exit(2);
            }
            Box::new(|c| Box::new(Vvbox::new(c)))
        }
        _ => usage(),
    };

    println!(
        "necofuzz: target={target} vendor={vendor} hours={hours} execs/h={execs_per_hour} \
         seed={seed} mode={mode:?} components[harness={} validator={} configurator={}]",
        mask.harness, mask.validator, mask.configurator
    );

    let cfg = CampaignConfig { vendor, hours, execs_per_hour, seed, mode, mask };
    let result = run_campaign(factory, &cfg);

    println!(
        "\ncoverage {:.1}% ({}/{} lines of {}), {} execs, {} watchdog restarts",
        result.final_coverage * 100.0,
        result.lines.count_in(&result.map, result.file),
        result.map.file_lines(result.file),
        result.map.file_name(result.file),
        result.execs,
        result.restarts,
    );

    if result.finds.is_empty() {
        println!("no anomalies detected");
    } else {
        println!("{} unique anomalies:", result.finds.len());
        for f in &result.finds {
            println!("  [{:<17}] {} at exec {}: {}", format!("{}", f.kind), f.bug_id, f.exec, f.message);
        }
    }

    // Save crashing inputs for reproduction (§4.5: "saves the current
    // fuzzing input to a timestamped file within a designated directory").
    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).expect("create output directory");
        for f in &result.finds {
            let path = format!("{dir}/crash-exec{:06}-{}.bin", f.exec, f.bug_id);
            let mut file = std::fs::File::create(&path).expect("create crash file");
            file.write_all(&f.input.bytes).expect("write crash input");
            let meta = format!("{dir}/crash-exec{:06}-{}.txt", f.exec, f.bug_id);
            std::fs::write(&meta, format!("{} via {}\n{}\n", f.bug_id, f.kind, f.message))
                .expect("write crash metadata");
            println!("saved {path}");
        }
    }

    if !result.finds.is_empty() {
        std::process::exit(1);
    }
}
