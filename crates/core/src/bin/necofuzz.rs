//! The `necofuzz` command-line fuzzer.
//!
//! ```text
//! necofuzz [--target vkvm|vxen|vvbox] [--vendor intel|amd]
//!          [--hours N] [--execs-per-hour N] [--seed N] [--runs N]
//!          [--jobs N] [--guided] [--no-harness] [--no-validator]
//!          [--no-configurator] [--engine snapshot|rebuild]
//!          [--out DIR] [--bench-out PATH]
//! ```
//!
//! Runs one campaign — or, with `--runs N`, a whole grid of campaigns
//! (seeds `seed..seed+N`) fanned out over the orchestrator's worker
//! pool (`--jobs`, default = all cores) — against the chosen hypervisor
//! model. Like the paper's agent (§4.5), every unique crashing input is
//! saved to a timestamped file under `--out` for later reproduction.
//! Parallelism never changes results: output is reduced in seed order.
//!
//! `--engine` selects the iteration hot path: `snapshot` (default) runs
//! on the persistent-execution engine — cached booted images restored
//! per iteration — while `rebuild` keeps the original
//! reboot-every-reconfiguration semantics for A/B comparison; results
//! are bit-identical either way. `--bench-out PATH` records the run's
//! throughput (total execs, wall-clock seconds, overall execs/sec,
//! and per-run exec/restart counts) as JSON for offline comparison.

use std::io::Write as _;

use necofuzz::campaign::CampaignResult;
use necofuzz::orchestrator::{Backend, CampaignExecutor, CampaignPlan};
use necofuzz::{ComponentMask, EngineMode};
use nf_fuzz::Mode;
use nf_hv::{Vkvm, Vvbox, Vxen};
use nf_x86::CpuVendor;

fn usage() -> ! {
    eprintln!(
        "usage: necofuzz [--target vkvm|vxen|vvbox] [--vendor intel|amd] [--hours N]\n\
         \x20               [--execs-per-hour N] [--seed N] [--runs N] [--jobs N]\n\
         \x20               [--guided] [--no-harness] [--no-validator]\n\
         \x20               [--no-configurator] [--engine snapshot|rebuild]\n\
         \x20               [--out DIR] [--bench-out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut target = "vkvm".to_string();
    let mut vendor = CpuVendor::Intel;
    let mut hours = 24u32;
    let mut execs_per_hour = 250u32;
    let mut seed = 0u64;
    let mut runs = 1u64;
    let mut jobs = 0usize; // 0 = available parallelism
    let mut mode = Mode::Unguided;
    let mut mask = ComponentMask::ALL;
    let mut engine = EngineMode::Snapshot;
    let mut out: Option<String> = None;
    let mut bench_out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--target" => target = value(),
            "--vendor" => {
                vendor = match value().as_str() {
                    "intel" => CpuVendor::Intel,
                    "amd" => CpuVendor::Amd,
                    _ => usage(),
                }
            }
            "--hours" => hours = value().parse().unwrap_or_else(|_| usage()),
            "--execs-per-hour" => execs_per_hour = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--runs" => runs = value().parse().unwrap_or_else(|_| usage()),
            "--jobs" => jobs = value().parse().unwrap_or_else(|_| usage()),
            "--guided" => mode = Mode::Guided,
            "--no-harness" => mask.harness = false,
            "--no-validator" => mask.validator = false,
            "--no-configurator" => mask.configurator = false,
            "--engine" => engine = EngineMode::parse(&value()).unwrap_or_else(|| usage()),
            "--out" => out = Some(value()),
            "--bench-out" => bench_out = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if runs == 0 {
        usage();
    }

    let backend = match target.as_str() {
        "vkvm" => Backend::new("vkvm", |c| Box::new(Vkvm::new(c))),
        "vxen" => Backend::new("vxen", |c| Box::new(Vxen::new(c))),
        "vvbox" => {
            if vendor != CpuVendor::Intel {
                eprintln!("vvbox supports only --vendor intel");
                std::process::exit(2);
            }
            Backend::new("vvbox", |c| Box::new(Vvbox::new(c)))
        }
        _ => usage(),
    };

    println!(
        "necofuzz: target={target} vendor={vendor} hours={hours} execs/h={execs_per_hour} \
         seeds={seed}..{} runs={runs} mode={mode:?} engine={engine} \
         components[harness={} validator={} configurator={}]",
        seed + runs,
        mask.harness,
        mask.validator,
        mask.configurator
    );

    let plan = CampaignPlan::new()
        .backend(backend)
        .vendors(&[vendor])
        .modes(&[mode])
        .masks(&[mask])
        .seeds(seed..seed + runs)
        .hours(hours)
        .execs_per_hour(execs_per_hour)
        .engine(engine);
    let executor = CampaignExecutor::new().jobs(jobs).on_progress(|p| {
        eprintln!(
            "[{:>3}/{}] {:<40} {}",
            p.completed, p.total, p.label, p.summary
        );
    });
    let started = std::time::Instant::now();
    let results = executor.run(&plan);
    let elapsed = started.elapsed().as_secs_f64();

    let mut unique_finds = 0usize;
    for (run, result) in results.iter().enumerate() {
        let run_seed = seed + run as u64;
        report_run(run_seed, result, runs > 1);
        unique_finds += result.finds.len();
        if let Some(dir) = &out {
            save_crashes(dir, run_seed, result);
        }
    }

    if runs > 1 {
        let coverages: Vec<f64> = results.iter().map(|r| r.final_coverage).collect();
        let mut ids: Vec<&str> = results
            .iter()
            .flat_map(|r| r.finds.iter().map(|f| f.bug_id.as_str()))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        println!(
            "\n{} runs: median coverage {:.1}%, {} unique bug(s): {:?}",
            runs,
            nf_stats_median(&coverages) * 100.0,
            ids.len(),
            ids
        );
    }

    if let Some(path) = &bench_out {
        save_bench(path, engine, elapsed, &results);
    }

    if unique_finds > 0 {
        std::process::exit(1);
    }
}

/// Writes the run's throughput record (`--bench-out`): execs/sec
/// overall and per seed, for offline engine A/B comparison.
fn save_bench(path: &str, engine: EngineMode, elapsed: f64, results: &[CampaignResult]) {
    let total_execs: u64 = results.iter().map(|r| r.execs).sum();
    let per_run: Vec<String> = results
        .iter()
        .map(|r| format!("{{\"execs\": {}, \"restarts\": {}}}", r.execs, r.restarts))
        .collect();
    let json = format!(
        "{{\n  \"engine\": \"{engine}\",\n  \"total_execs\": {total_execs},\n  \
         \"elapsed_sec\": {elapsed:.3},\n  \"execs_per_sec\": {:.1},\n  \
         \"runs\": [{}]\n}}\n",
        total_execs as f64 / elapsed,
        per_run.join(", ")
    );
    std::fs::write(path, json).expect("write bench output");
    println!("wrote {path}");
}

/// Median without pulling `nf-stats` into the core crate's deps.
fn nf_stats_median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn report_run(run_seed: u64, result: &CampaignResult, multi: bool) {
    let prefix = if multi {
        format!("[seed {run_seed}] ")
    } else {
        String::new()
    };
    println!(
        "\n{prefix}coverage {:.1}% ({}/{} lines of {}), {} execs, {} watchdog restarts",
        result.final_coverage * 100.0,
        result.lines.count_in(&result.map, result.file),
        result.map.file_lines(result.file),
        result.map.file_name(result.file),
        result.execs,
        result.restarts,
    );

    if result.finds.is_empty() {
        println!("{prefix}no anomalies detected");
    } else {
        println!("{prefix}{} unique anomalies:", result.finds.len());
        for f in &result.finds {
            println!(
                "  [{:<17}] {} at exec {}: {}",
                format!("{}", f.kind),
                f.bug_id,
                f.exec,
                f.message
            );
        }
    }
}

/// Saves crashing inputs for reproduction (§4.5: "saves the current
/// fuzzing input to a timestamped file within a designated directory").
fn save_crashes(dir: &str, run_seed: u64, result: &CampaignResult) {
    std::fs::create_dir_all(dir).expect("create output directory");
    for f in &result.finds {
        let path = format!(
            "{dir}/crash-s{run_seed:03}-exec{:06}-{}.bin",
            f.exec, f.bug_id
        );
        let mut file = std::fs::File::create(&path).expect("create crash file");
        file.write_all(&f.input.bytes).expect("write crash input");
        let meta = format!(
            "{dir}/crash-s{run_seed:03}-exec{:06}-{}.txt",
            f.exec, f.bug_id
        );
        std::fs::write(
            &meta,
            format!("{} via {}\n{}\n", f.bug_id, f.kind, f.message),
        )
        .expect("write crash metadata");
        println!("saved {path}");
    }
}
