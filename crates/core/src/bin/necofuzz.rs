//! The `necofuzz` command-line fuzzer.
//!
//! ```text
//! necofuzz [--target vkvm|vxen|vvbox] [--vendor intel|amd]
//!          [--hours N] [--execs-per-hour N] [--seed N] [--runs N]
//!          [--jobs N] [--guided] [--mutator havoc|structured]
//!          [--no-harness] [--no-validator]
//!          [--no-configurator] [--engine snapshot|rebuild]
//!          [--prefix-cache] [--prefix-budget BYTES] [--cache-capacity N]
//!          [--oracle sanitizer|differential] [--diff-backends LIST]
//!          [--sync-interval N] [--sync-mode lockstep|async]
//!          [--sync-topology ring|tree] [--corpus-dir DIR]
//!          [--resume-corpus DIR] [--out DIR] [--bench-out PATH]
//!          [--fault-plan SEED:RATE] [--watchdog-fuel N]
//!          [--checkpoint-dir DIR] [--checkpoint-interval N]
//!          [--resume-checkpoint DIR]
//! necofuzz corpus stat DIR
//! necofuzz corpus minimize DIR [--out DIR]
//! necofuzz corpus repro FILE [--target T] [--vendor V]
//!          [--engine E] [--prefix-cache] [--prefix-budget BYTES]
//!          [--cache-capacity N] [--minimize] [--out FILE]
//! ```
//!
//! Runs one campaign — or, with `--runs N`, a whole grid of campaigns
//! (seeds `seed..seed+N`) fanned out over the orchestrator's worker
//! pool (`--jobs`, default = all cores) — against the chosen hypervisor
//! model. Like the paper's agent (§4.5), every unique crashing input is
//! saved to a timestamped file under `--out` for later reproduction.
//! Parallelism never changes results: output is reduced in seed order.
//!
//! `--sync-interval N` makes the runs an AFL++-style sync group: every
//! `N` virtual hours the campaigns exchange corpus deltas (novel queue
//! entries + virgin-bitmap knowledge) through a shared pool, merged in
//! deterministic seed order. `--sync-mode async` replaces that hourly
//! lockstep barrier with watermark-based asynchronous gossip: workers
//! publish sharded deltas the moment they observe novelty and absorb
//! their neighbours' deltas at iteration boundaries, exactly once,
//! over the `--sync-topology` graph (`tree`, the default, or `ring`).
//! Both modes are deterministic for a fixed seed set; lockstep remains
//! the A/B oracle. `--corpus-dir DIR` persists each run's
//! final corpus to `DIR/seedNNN/` for the `corpus` subcommand:
//! `stat` summarizes a saved corpus, `minimize` runs the
//! afl-cmin-style greedy set cover over line coverage, and `repro`
//! replays a saved crash input against a clean engine (with
//! `--minimize`, greedily truncating it to the bytes the bug needs).
//! `--resume-corpus DIR` starts a single campaign from a saved corpus
//! (queue and virgin-bitmap knowledge carried over) instead of the
//! default seed set.
//!
//! `--mutator` selects how guided mode turns queue parents into
//! children: `havoc` (default) is the classic byte-blind stack,
//! bit-identical to the original engine; `structured` runs the
//! scenario mutation engine — section-typed operators (init-step,
//! runtime-step, VMCS-field, MSR-entry, vCPU-bit) scheduled by an
//! adaptive profile, with per-operator provenance recorded on every
//! queued entry (shown by `corpus stat`).
//!
//! `--engine` selects the iteration hot path: `snapshot` (default) runs
//! on the persistent-execution engine — cached booted images restored
//! per iteration — while `rebuild` keeps the original
//! reboot-every-reconfiguration semantics for A/B comparison; results
//! are bit-identical either way. `--bench-out PATH` records the run's
//! throughput (total execs, wall-clock seconds, overall execs/sec,
//! and per-run exec/restart counts) as JSON for offline comparison.
//!
//! `--prefix-cache` (snapshot engine only) arms the incremental
//! snapshot trie: mid-scenario snapshots are captured at hot
//! instruction boundaries, and each execution resumes from the deepest
//! cached ancestor of its scenario prefix, executing only the suffix.
//! Full replay is the built-in A/B oracle — campaign results are
//! bit-identical with the cache on or off; only wall-clock changes.
//! `--prefix-budget BYTES` (requires `--prefix-cache`) sets the trie's
//! byte budget (default 8 MiB); past it the stalest nodes are evicted,
//! and results stay bit-identical at any budget — the trie's
//! content-addressed store charges each unique blob once, so the same
//! budget holds far more boundaries than a deep-copy store would.
//! `--cache-capacity N` sizes the engine's booted-image cache (parked
//! config → booted-hypervisor images; default 16).
//!
//! `--oracle differential` arms the cross-backend differential oracle
//! on top of the sanitizers: every executed input is replayed across
//! `--diff-backends` (comma-separated; default `<target>,golden`) and
//! the canonical L1-visible observations are diffed pairwise, turning
//! silent misvirtualizations into `divergence` findings. Divergence
//! crash files embed their backend pair in the bug id, and `corpus
//! repro` detects them automatically: the input is replayed across the
//! recorded pair and the first divergent exit is printed (with
//! `--minimize`, truncation candidates must preserve the exact
//! divergence signature, not merely still crash).
//!
//! `--fault-plan SEED:RATE` arms deterministic fault injection in
//! every backend the run touches: `RATE` (a fraction in `[0, 1]`) is
//! split across hung vmexit loops, transient and permanent restore
//! failures, snapshot-capture corruption, and silent host deaths,
//! all scheduled by `SEED` independently of the fuzzing seed. The
//! same plan against the same campaign reproduces the same faults,
//! fault counters, and findings, byte for byte. `--watchdog-fuel N`
//! sets the per-execution fuel budget after which the exec watchdog
//! reaps a runaway execution as a `hung_exec` finding (default
//! 1 Mi instruction-cost units).
//!
//! `--checkpoint-dir DIR` (single campaign only) persists a crash-safe
//! checkpoint — corpus, RNG position, scheduler state, coverage,
//! corrections, findings — to `DIR` every `--checkpoint-interval`
//! virtual hours (default every hour), each write atomic via a
//! stage-and-swap. `--resume-checkpoint DIR` restarts a killed
//! campaign from its last checkpoint and converges to the exact
//! result the uninterrupted run would have produced. Differential
//! oracle campaigns are not checkpointable (the oracle's replay
//! agents hold unpersisted state).

use std::io::Write as _;

use necofuzz::campaign::CampaignResult;
use necofuzz::orchestrator::{Backend, CampaignExecutor, CampaignPlan};
use necofuzz::{
    backend_factory, parse_divergence_pair, ComponentMask, DiffOracle, EngineMode, OracleMode,
    ReplayOracle,
};
use nf_fuzz::corpus::Corpus;
use nf_fuzz::{FuzzInput, Mode, MutationStrategy, Operator, SyncMode, SyncTopology, INPUT_LEN};
use nf_hv::{FaultPlan, HvConfig, L0Hypervisor, Vkvm, Vvbox, Vxen};
use nf_x86::CpuVendor;

fn usage() -> ! {
    eprintln!(
        "usage: necofuzz [--target vkvm|vxen|vvbox] [--vendor intel|amd] [--hours N]\n\
         \x20               [--execs-per-hour N] [--seed N] [--runs N] [--jobs N]\n\
         \x20               [--guided] [--mutator havoc|structured]\n\
         \x20               [--no-harness] [--no-validator]\n\
         \x20               [--no-configurator] [--engine snapshot|rebuild]\n\
         \x20               [--prefix-cache] [--prefix-budget BYTES]\n\
         \x20               [--cache-capacity N]\n\
         \x20               [--oracle sanitizer|differential] [--diff-backends LIST]\n\
         \x20               [--sync-interval N] [--sync-mode lockstep|async]\n\
         \x20               [--sync-topology ring|tree] [--corpus-dir DIR]\n\
         \x20               [--resume-corpus DIR] [--out DIR] [--bench-out PATH]\n\
         \x20               [--fault-plan SEED:RATE] [--watchdog-fuel N]\n\
         \x20               [--checkpoint-dir DIR] [--checkpoint-interval N]\n\
         \x20               [--resume-checkpoint DIR]\n\
         \x20      necofuzz corpus stat DIR\n\
         \x20      necofuzz corpus minimize DIR [--out DIR]\n\
         \x20      necofuzz corpus repro FILE [--target T] [--vendor V]\n\
         \x20               [--engine E] [--prefix-cache] [--prefix-budget BYTES]\n\
         \x20               [--cache-capacity N]\n\
         \x20               [--minimize] [--out FILE]"
    );
    std::process::exit(2);
}

fn backend_for(target: &str, vendor: CpuVendor) -> Backend {
    match target {
        "vkvm" => Backend::new("vkvm", |c| Box::new(Vkvm::new(c))),
        "vxen" => Backend::new("vxen", |c| Box::new(Vxen::new(c))),
        "vvbox" => {
            if vendor != CpuVendor::Intel {
                eprintln!("vvbox supports only --vendor intel");
                std::process::exit(2);
            }
            Backend::new("vvbox", |c| Box::new(Vvbox::new(c)))
        }
        _ => usage(),
    }
}

fn main() {
    let mut target = "vkvm".to_string();
    let mut vendor = CpuVendor::Intel;
    let mut hours = 24u32;
    let mut execs_per_hour = 250u32;
    let mut seed = 0u64;
    let mut runs = 1u64;
    let mut jobs = 0usize; // 0 = available parallelism
    let mut mode = Mode::Unguided;
    let mut mask = ComponentMask::ALL;
    let mut engine = EngineMode::Snapshot;
    let mut prefix_cache = false;
    let mut prefix_budget = necofuzz::DEFAULT_PREFIX_BUDGET;
    let mut prefix_budget_set = false;
    let mut cache_capacity = necofuzz::DEFAULT_CACHE_CAPACITY;
    let mut strategy = MutationStrategy::Havoc;
    let mut oracle = OracleMode::Sanitizer;
    let mut diff_backends: Vec<String> = Vec::new();
    let mut sync_interval = 0u32;
    let mut sync_mode = SyncMode::Lockstep;
    let mut sync_topology = SyncTopology::Tree;
    let mut corpus_dir: Option<String> = None;
    let mut resume_corpus: Option<String> = None;
    let mut out: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut fault_plan: Option<(u64, f64)> = None;
    let mut watchdog_fuel: Option<u64> = None;
    let mut checkpoint_dir: Option<String> = None;
    let mut checkpoint_interval = 0u32; // 0 = unset; defaults to 1 with --checkpoint-dir
    let mut resume_checkpoint: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("corpus") {
        corpus_main(&args[1..]);
        return;
    }
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--target" => target = value(),
            "--vendor" => {
                vendor = match value().as_str() {
                    "intel" => CpuVendor::Intel,
                    "amd" => CpuVendor::Amd,
                    _ => usage(),
                }
            }
            "--hours" => hours = value().parse().unwrap_or_else(|_| usage()),
            "--execs-per-hour" => execs_per_hour = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--runs" => runs = value().parse().unwrap_or_else(|_| usage()),
            "--jobs" => jobs = value().parse().unwrap_or_else(|_| usage()),
            "--guided" => mode = Mode::Guided,
            "--mutator" => strategy = MutationStrategy::parse(&value()).unwrap_or_else(|| usage()),
            "--no-harness" => mask.harness = false,
            "--no-validator" => mask.validator = false,
            "--no-configurator" => mask.configurator = false,
            "--engine" => engine = EngineMode::parse(&value()).unwrap_or_else(|| usage()),
            "--prefix-cache" => prefix_cache = true,
            "--prefix-budget" => {
                prefix_budget = value().parse().unwrap_or_else(|_| usage());
                prefix_budget_set = true;
            }
            "--cache-capacity" => cache_capacity = value().parse().unwrap_or_else(|_| usage()),
            "--oracle" => oracle = OracleMode::parse(&value()).unwrap_or_else(|| usage()),
            "--diff-backends" => {
                diff_backends = value().split(',').map(str::to_string).collect();
            }
            "--sync-interval" => sync_interval = value().parse().unwrap_or_else(|_| usage()),
            "--sync-mode" => sync_mode = SyncMode::parse(&value()).unwrap_or_else(|| usage()),
            "--sync-topology" => {
                sync_topology = SyncTopology::parse(&value()).unwrap_or_else(|| usage());
            }
            "--corpus-dir" => corpus_dir = Some(value()),
            "--resume-corpus" => resume_corpus = Some(value()),
            "--out" => out = Some(value()),
            "--bench-out" => bench_out = Some(value()),
            "--fault-plan" => {
                let v = value();
                let (s, r) = v.split_once(':').unwrap_or_else(|| usage());
                let plan_seed: u64 = s.parse().unwrap_or_else(|_| usage());
                let rate: f64 = r.parse().unwrap_or_else(|_| usage());
                fault_plan = Some((plan_seed, rate));
            }
            "--watchdog-fuel" => watchdog_fuel = Some(value().parse().unwrap_or_else(|_| usage())),
            "--checkpoint-dir" => checkpoint_dir = Some(value()),
            "--checkpoint-interval" => {
                checkpoint_interval = value().parse().unwrap_or_else(|_| usage());
            }
            "--resume-checkpoint" => resume_checkpoint = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if runs == 0 {
        usage();
    }
    if prefix_cache && engine != EngineMode::Snapshot {
        eprintln!("--prefix-cache requires --engine snapshot (the trie restores snapshots)");
        std::process::exit(2);
    }
    if prefix_budget_set && !prefix_cache {
        eprintln!("--prefix-budget requires --prefix-cache (it sizes the prefix trie)");
        std::process::exit(2);
    }
    if cache_capacity == 0 {
        eprintln!("--cache-capacity must be at least 1");
        std::process::exit(2);
    }
    if sync_mode == SyncMode::Async && sync_interval == 0 {
        eprintln!("--sync-mode async needs --sync-interval N (any N > 0 switches gossip on)");
        std::process::exit(2);
    }
    if let Some((_, rate)) = fault_plan {
        if !(0.0..=1.0).contains(&rate) {
            eprintln!("--fault-plan: RATE must be a fraction within [0, 1]");
            std::process::exit(2);
        }
    }
    if watchdog_fuel == Some(0) {
        eprintln!("--watchdog-fuel must be at least 1 (a zero budget starves every exec)");
        std::process::exit(2);
    }
    if checkpoint_interval != 0 && checkpoint_dir.is_none() {
        eprintln!("--checkpoint-interval requires --checkpoint-dir (it paces checkpoint writes)");
        std::process::exit(2);
    }
    if checkpoint_dir.is_some() || resume_checkpoint.is_some() {
        let flag = if resume_checkpoint.is_some() {
            "--resume-checkpoint"
        } else {
            "--checkpoint-dir"
        };
        if runs != 1 {
            eprintln!("{flag} drives exactly one campaign; drop --runs");
            std::process::exit(2);
        }
        if sync_interval != 0 {
            eprintln!("{flag} runs a lone campaign; drop --sync-interval");
            std::process::exit(2);
        }
        if oracle == OracleMode::Differential {
            eprintln!("{flag} does not support the differential oracle (its replay agents hold unpersisted state)");
            std::process::exit(2);
        }
        if bench_out.is_some() {
            eprintln!("{flag} does not record throughput; drop --bench-out");
            std::process::exit(2);
        }
    }
    if resume_checkpoint.is_some() && resume_corpus.is_some() {
        eprintln!("--resume-checkpoint restores its own corpus; drop --resume-corpus");
        std::process::exit(2);
    }
    match oracle {
        OracleMode::Sanitizer => {
            if !diff_backends.is_empty() {
                eprintln!("--diff-backends requires --oracle differential");
                std::process::exit(2);
            }
        }
        OracleMode::Differential => {
            if diff_backends.is_empty() {
                diff_backends = vec![target.clone(), "golden".to_string()];
            }
            if diff_backends.len() < 2 {
                eprintln!("--diff-backends needs at least two backends to diff");
                std::process::exit(2);
            }
            for name in &diff_backends {
                if backend_factory(name).is_none() {
                    eprintln!("--diff-backends: unknown backend {name:?}");
                    std::process::exit(2);
                }
                if name == "vvbox" && vendor != CpuVendor::Intel {
                    eprintln!("--diff-backends: vvbox supports only --vendor intel");
                    std::process::exit(2);
                }
            }
        }
    }

    let backend = backend_for(&target, vendor);

    if let Some(dir) = &resume_corpus {
        if runs != 1 {
            eprintln!("--resume-corpus resumes exactly one campaign; drop --runs");
            std::process::exit(2);
        }
        // Reject flags the resume path would silently ignore.
        if sync_interval != 0 {
            eprintln!("--resume-corpus runs a lone campaign; drop --sync-interval");
            std::process::exit(2);
        }
        if bench_out.is_some() {
            eprintln!("--resume-corpus does not record throughput; drop --bench-out");
            std::process::exit(2);
        }
        let loaded = load_corpus(&resolve_corpus_dir(dir));
        println!(
            "necofuzz: resuming from {dir} ({} entries, worker {}) — target={target} \
             vendor={vendor} hours={hours} execs/h={execs_per_hour} seed={seed} mode={mode:?}",
            loaded.len(),
            loaded.worker()
        );
        let diff_refs: Vec<&str> = diff_backends.iter().map(String::as_str).collect();
        let mut cfg = necofuzz::campaign::CampaignConfig::necofuzz(vendor, hours, seed)
            .with_execs_per_hour(execs_per_hour)
            .with_mode(mode)
            .with_mask(mask)
            .with_engine(engine)
            .with_prefix_cache(prefix_cache)
            .with_prefix_budget(prefix_budget)
            .with_cache_capacity(cache_capacity)
            .with_strategy(strategy)
            .with_oracle(oracle)
            .with_diff_backends(&diff_refs);
        if let Some((plan_seed, rate)) = fault_plan {
            cfg = cfg.with_fault_plan(FaultPlan::uniform(plan_seed, rate));
        }
        if let Some(fuel) = watchdog_fuel {
            cfg = cfg.with_watchdog_fuel(fuel);
        }
        let mut campaign =
            necofuzz::campaign::Campaign::with_corpus(backend.factory(), &cfg, loaded);
        if let Some(ck_dir) = &checkpoint_dir {
            campaign.set_checkpoint(ck_dir, checkpoint_interval.max(1));
        }
        let result = campaign.into_result();
        report_run(seed, &result, false);
        if let Some(dir) = &out {
            save_crashes(dir, seed, &result);
        }
        if let Some(dir) = &corpus_dir {
            save_corpus(dir, seed, &result);
        }
        std::process::exit(i32::from(!result.finds.is_empty()));
    }

    if checkpoint_dir.is_some() || resume_checkpoint.is_some() {
        // Checkpointed (and resumed) campaigns run the single-campaign
        // path directly: the checkpoint seam lives on `Campaign`, not
        // on the orchestrator's grid.
        let mut cfg = necofuzz::campaign::CampaignConfig::necofuzz(vendor, hours, seed)
            .with_execs_per_hour(execs_per_hour)
            .with_mode(mode)
            .with_mask(mask)
            .with_engine(engine)
            .with_prefix_cache(prefix_cache)
            .with_prefix_budget(prefix_budget)
            .with_cache_capacity(cache_capacity)
            .with_strategy(strategy)
            .with_oracle(oracle);
        if let Some((plan_seed, rate)) = fault_plan {
            cfg = cfg.with_fault_plan(FaultPlan::uniform(plan_seed, rate));
        }
        if let Some(fuel) = watchdog_fuel {
            cfg = cfg.with_watchdog_fuel(fuel);
        }
        let mut campaign = if let Some(dir) = &resume_checkpoint {
            let campaign =
                necofuzz::campaign::Campaign::resume_from_checkpoint(backend.factory(), &cfg, dir)
                    .unwrap_or_else(|e| {
                        eprintln!("--resume-checkpoint {dir}: {e}");
                        std::process::exit(2);
                    });
            println!(
                "necofuzz: resumed checkpoint {dir} at hour {}/{} — target={target} \
                 vendor={vendor} seed={seed} mode={mode:?}",
                campaign.hours_done(),
                campaign.hours_total()
            );
            campaign
        } else {
            println!(
                "necofuzz: target={target} vendor={vendor} hours={hours} \
                 execs/h={execs_per_hour} seed={seed} mode={mode:?} \
                 checkpointing every {}h",
                checkpoint_interval.max(1)
            );
            necofuzz::campaign::Campaign::new(backend.factory(), &cfg)
        };
        if let Some(ck_dir) = &checkpoint_dir {
            campaign.set_checkpoint(ck_dir, checkpoint_interval.max(1));
        }
        let result = campaign.into_result();
        report_run(seed, &result, false);
        if let Some(dir) = &out {
            save_crashes(dir, seed, &result);
        }
        if let Some(dir) = &corpus_dir {
            save_corpus(dir, seed, &result);
        }
        std::process::exit(i32::from(!result.finds.is_empty()));
    }

    let oracle_desc = match oracle {
        OracleMode::Sanitizer => oracle.to_string(),
        OracleMode::Differential => format!("{oracle}[{}]", diff_backends.join("+")),
    };
    let engine_desc = if prefix_cache {
        format!("{engine}+prefix(cap {cache_capacity}, budget {prefix_budget} B)")
    } else {
        engine.to_string()
    };
    let sync_desc = match sync_mode {
        SyncMode::Lockstep => format!("{sync_interval}h"),
        SyncMode::Async => format!("async-{sync_topology}"),
    };
    let fault_desc = match fault_plan {
        Some((plan_seed, rate)) => format!("{plan_seed}:{rate}"),
        None => "off".to_string(),
    };
    println!(
        "necofuzz: target={target} vendor={vendor} hours={hours} execs/h={execs_per_hour} \
         seeds={seed}..{} runs={runs} mode={mode:?} mutator={strategy} engine={engine_desc} \
         oracle={oracle_desc} sync={sync_desc} faults={fault_desc} \
         components[harness={} validator={} configurator={}]",
        seed + runs,
        mask.harness,
        mask.validator,
        mask.configurator
    );

    let diff_refs: Vec<&str> = diff_backends.iter().map(String::as_str).collect();
    let mut plan = CampaignPlan::new()
        .backend(backend)
        .vendors(&[vendor])
        .modes(&[mode])
        .masks(&[mask])
        .seeds(seed..seed + runs)
        .hours(hours)
        .execs_per_hour(execs_per_hour)
        .engine(engine)
        .prefix_cache(prefix_cache)
        .prefix_budget(prefix_budget)
        .cache_capacity(cache_capacity)
        .sync_interval(sync_interval)
        .sync_mode(sync_mode)
        .sync_topology(sync_topology)
        .strategy(strategy)
        .oracle(oracle)
        .diff_backends(&diff_refs);
    if let Some((plan_seed, rate)) = fault_plan {
        plan = plan.fault_plan(FaultPlan::uniform(plan_seed, rate));
    }
    if let Some(fuel) = watchdog_fuel {
        plan = plan.watchdog_fuel(fuel);
    }
    let executor = CampaignExecutor::new()
        .jobs(jobs)
        .on_progress(|p| {
            eprintln!(
                "[{:>3}/{}] {:<40} {}",
                p.completed, p.total, p.label, p.summary
            );
        })
        // Synced fleets are one scheduling unit; without the hourly
        // heartbeat a long fleet would print nothing until it finished.
        .on_epoch(|e| {
            eprintln!(
                "[{:>3}h/{}h] {:<40} best cov {:.1}%",
                e.hours_done,
                e.hours_total,
                e.label,
                e.best_coverage * 100.0
            );
        });
    let started = std::time::Instant::now();
    let results = executor.run(&plan);
    let elapsed = started.elapsed().as_secs_f64();

    let mut unique_finds = 0usize;
    for (run, result) in results.iter().enumerate() {
        let run_seed = seed + run as u64;
        report_run(run_seed, result, runs > 1);
        unique_finds += result.finds.len();
        if let Some(dir) = &out {
            save_crashes(dir, run_seed, result);
        }
        if let Some(dir) = &corpus_dir {
            save_corpus(dir, run_seed, result);
        }
    }

    if runs > 1 {
        let coverages: Vec<f64> = results.iter().map(|r| r.final_coverage).collect();
        let mut ids: Vec<&str> = results
            .iter()
            .flat_map(|r| r.finds.iter().map(|f| f.bug_id.as_str()))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        println!(
            "\n{} runs: median coverage {:.1}%, {} unique bug(s): {:?}",
            runs,
            nf_stats_median(&coverages) * 100.0,
            ids.len(),
            ids
        );
    }

    if let Some(path) = &bench_out {
        save_bench(path, engine, elapsed, &results);
    }

    if unique_finds > 0 {
        std::process::exit(1);
    }
}

/// The `corpus` subcommand: offline corpus tooling.
///
/// - `stat DIR` — entry/coverage summary of a saved corpus;
/// - `minimize DIR [--out DIR]` — afl-cmin-style greedy set cover over
///   line coverage, saved back (or to `--out`);
/// - `repro FILE [--target T] [--vendor V] [--engine E] [--minimize]
///   [--out FILE]` — replay a saved crash input against a clean
///   engine; with `--minimize`, greedily truncate it to the bytes the
///   bug still needs (every candidate validated by re-execution).
fn corpus_main(args: &[String]) {
    let mut it = args.iter();
    let action = it.next().map(String::as_str).unwrap_or_else(|| usage());
    let path = it.next().cloned().unwrap_or_else(|| usage());
    let mut target = "vkvm".to_string();
    let mut vendor = CpuVendor::Intel;
    let mut engine = EngineMode::Snapshot;
    let mut prefix_cache = false;
    let mut prefix_budget = necofuzz::DEFAULT_PREFIX_BUDGET;
    let mut prefix_budget_set = false;
    let mut cache_capacity = necofuzz::DEFAULT_CACHE_CAPACITY;
    let mut minimize = false;
    let mut out: Option<String> = None;
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        // Reject flags the chosen action ignores: `corpus stat DIR
        // --minimize` silently doing nothing would read as success.
        let only_repro = |flag: &str| {
            if action != "repro" {
                eprintln!("corpus {action}: {flag} applies only to repro");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--target" => {
                only_repro("--target");
                target = value();
            }
            "--vendor" => {
                only_repro("--vendor");
                vendor = match value().as_str() {
                    "intel" => CpuVendor::Intel,
                    "amd" => CpuVendor::Amd,
                    _ => usage(),
                }
            }
            "--engine" => {
                only_repro("--engine");
                engine = EngineMode::parse(&value()).unwrap_or_else(|| usage());
            }
            "--prefix-cache" => {
                only_repro("--prefix-cache");
                prefix_cache = true;
            }
            "--prefix-budget" => {
                only_repro("--prefix-budget");
                prefix_budget = value().parse().unwrap_or_else(|_| usage());
                prefix_budget_set = true;
            }
            "--cache-capacity" => {
                only_repro("--cache-capacity");
                cache_capacity = value().parse().unwrap_or_else(|_| usage());
            }
            "--minimize" => {
                only_repro("--minimize");
                minimize = true;
            }
            "--out" => {
                if action == "stat" {
                    eprintln!("corpus stat: --out is not supported");
                    std::process::exit(2);
                }
                out = Some(value());
            }
            _ => usage(),
        }
    }

    if prefix_cache && engine != EngineMode::Snapshot {
        eprintln!("corpus repro: --prefix-cache requires --engine snapshot");
        std::process::exit(2);
    }
    if prefix_budget_set && !prefix_cache {
        eprintln!("corpus repro: --prefix-budget requires --prefix-cache");
        std::process::exit(2);
    }
    if cache_capacity == 0 {
        eprintln!("corpus repro: --cache-capacity must be at least 1");
        std::process::exit(2);
    }
    let path = match action {
        "stat" | "minimize" => resolve_corpus_dir(&path),
        _ => path,
    };
    match action {
        "stat" => {
            let corpus = load_corpus(&path);
            let lines = corpus.line_union();
            println!(
                "corpus {path}: {} entries (worker {}), {} bitmap bits seen, \
                 {} lines of entry evidence",
                corpus.len(),
                corpus.worker(),
                corpus.seen_bits(),
                lines.count()
            );
            // Per-operator provenance: which mutation operator earned
            // how much of the queue. The yield ratio is the operator's
            // share of all queued entries — on a havoc or unguided
            // corpus everything lands in the untyped bucket.
            let total = corpus.len().max(1);
            println!("operator provenance (queue-yield ratios):");
            for (op, count) in corpus.operator_census() {
                println!(
                    "  {:<24} {count:>5}  {:>5.1}%",
                    op.map_or("untyped (seed/havoc)", Operator::name),
                    count as f64 * 100.0 / total as f64
                );
            }
            for (i, entry) in corpus.entries().enumerate() {
                println!(
                    "  [{i:4}] worker {} exec {:>7}  {:>4} edges  {:>5} lines  energy {}  via {}",
                    entry.provenance.worker,
                    entry.provenance.exec,
                    entry.cov.len(),
                    entry.lines.count(),
                    entry.energy,
                    entry.provenance.op.map_or("-", Operator::name)
                );
            }
        }
        "minimize" => {
            let corpus = load_corpus(&path);
            let before = (corpus.len(), corpus.line_union().count());
            let minimized = corpus.minimize();
            assert_eq!(
                minimized.line_union(),
                corpus.line_union(),
                "minimize must preserve exact line coverage"
            );
            let dest = out.unwrap_or_else(|| path.clone());
            minimized
                .save_to(&dest)
                .unwrap_or_else(|e| panic!("save minimized corpus to {dest}: {e}"));
            println!(
                "minimized {path}: {} -> {} entries ({} lines preserved), wrote {dest}",
                before.0,
                minimized.len(),
                before.1
            );
        }
        "repro" => {
            let bytes = std::fs::read(&path).unwrap_or_else(|e| {
                eprintln!("read {path}: {e}");
                std::process::exit(2);
            });
            let mut input = FuzzInput::zeroed();
            let n = bytes.len().min(INPUT_LEN);
            input.bytes[..n].copy_from_slice(&bytes[..n]);

            // Divergence findings carry their backend pair in the bug
            // id — and therefore in the saved crash filename. Those
            // replay across the recorded pair with the differential
            // oracle (printing the first-divergent exit); everything
            // else replays against the single --target sanitizer
            // oracle as before.
            let (bugs, minimized) = if let Some((a, b)) = parse_divergence_pair(&path) {
                for name in [&a, &b] {
                    if backend_factory(name).is_none() {
                        eprintln!("corpus repro: unknown differential backend {name:?} in {path}");
                        std::process::exit(2);
                    }
                }
                println!("{path}: divergence finding, replaying across {a}+{b}");
                let backends = [a.clone(), b.clone()];
                let oracle = DiffOracle::new(&backends, vendor, ComponentMask::ALL, engine)
                    .with_prefix_cache(prefix_cache)
                    .with_prefix_budget(prefix_budget)
                    .with_cache_capacity(cache_capacity);
                let bugs = oracle.replay(&input);
                if bugs.is_empty() {
                    println!("{path}: no divergence reproduced between {a} and {b}");
                    std::process::exit(1);
                }
                let min = minimize.then(|| oracle.minimize(&bugs[0].0, &input));
                (bugs, min)
            } else {
                let backend = backend_for(&target, vendor);
                let factory =
                    move |cfg: HvConfig| -> Box<dyn L0Hypervisor> { backend.factory()(cfg) };
                let oracle = ReplayOracle::new(factory, vendor, ComponentMask::ALL, engine)
                    .with_prefix_cache(prefix_cache)
                    .with_prefix_budget(prefix_budget)
                    .with_cache_capacity(cache_capacity);
                let bugs = oracle.replay(&input);
                if bugs.is_empty() {
                    println!("{path}: no anomaly reproduced on {target}/{vendor}");
                    std::process::exit(1);
                }
                let min = minimize.then(|| oracle.minimize(&bugs[0].0, &input));
                (bugs, min)
            };
            for (id, kind, message) in &bugs {
                println!("{path}: reproduced [{kind}] {id}: {message}");
            }
            if let Some(minimized) = minimized {
                let bug_id = &bugs[0].0;
                let nonzero = minimized.bytes.iter().filter(|&&b| b != 0).count();
                let dest = out.unwrap_or_else(|| format!("{path}.min.bin"));
                std::fs::write(&dest, &minimized.bytes)
                    .unwrap_or_else(|e| panic!("write {dest}: {e}"));
                println!(
                    "minimized reproducer for {bug_id}: {} -> {} non-zero bytes, wrote {dest}",
                    input.bytes.iter().filter(|&&b| b != 0).count(),
                    nonzero
                );
            }
        }
        _ => usage(),
    }
}

/// Resolves a `corpus` subcommand directory argument: a corpus dir is
/// used as-is, while a `--corpus-dir` parent holding exactly one
/// `seedNNN` corpus descends into it (several are ambiguous — they are
/// listed so the user can pick one).
fn resolve_corpus_dir(path: &str) -> String {
    if std::path::Path::new(path).join("MANIFEST").exists() {
        return path.to_string();
    }
    let mut seeds: Vec<String> = std::fs::read_dir(path)
        .map(|rd| {
            rd.flatten()
                .filter(|e| e.path().join("MANIFEST").exists())
                .map(|e| e.path().display().to_string())
                .collect()
        })
        .unwrap_or_default();
    seeds.sort();
    match seeds.len() {
        0 => path.to_string(), // let load_corpus report the real error
        1 => seeds.pop().expect("one element"),
        _ => {
            eprintln!("{path} holds several corpora; pick one of:");
            for s in &seeds {
                eprintln!("  {s}");
            }
            std::process::exit(2);
        }
    }
}

/// Persists a run's final corpus to `dir/seedNNN/` (the layout the
/// `corpus` subcommand and `--resume-corpus` read back).
fn save_corpus(dir: &str, run_seed: u64, result: &CampaignResult) {
    let run_dir = format!("{dir}/seed{run_seed:03}");
    result
        .corpus
        .save_to(&run_dir)
        .unwrap_or_else(|e| panic!("save corpus to {run_dir}: {e}"));
    println!(
        "saved corpus ({} entries) to {run_dir}",
        result.corpus.len()
    );
}

fn load_corpus(path: &str) -> Corpus {
    Corpus::load_from(path).unwrap_or_else(|e| {
        eprintln!("load corpus from {path}: {e}");
        std::process::exit(2);
    })
}

/// Writes the run's throughput record (`--bench-out`): execs/sec
/// overall and per seed, for offline engine A/B comparison.
fn save_bench(path: &str, engine: EngineMode, elapsed: f64, results: &[CampaignResult]) {
    let total_execs: u64 = results.iter().map(|r| r.execs).sum();
    let per_run: Vec<String> = results
        .iter()
        .map(|r| format!("{{\"execs\": {}, \"restarts\": {}}}", r.execs, r.restarts))
        .collect();
    let json = format!(
        "{{\n  \"engine\": \"{engine}\",\n  \"total_execs\": {total_execs},\n  \
         \"elapsed_sec\": {elapsed:.3},\n  \"execs_per_sec\": {:.1},\n  \
         \"runs\": [{}]\n}}\n",
        total_execs as f64 / elapsed,
        per_run.join(", ")
    );
    std::fs::write(path, json).expect("write bench output");
    println!("wrote {path}");
}

/// Median without pulling `nf-stats` into the core crate's deps.
fn nf_stats_median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn report_run(run_seed: u64, result: &CampaignResult, multi: bool) {
    let prefix = if multi {
        format!("[seed {run_seed}] ")
    } else {
        String::new()
    };
    println!(
        "\n{prefix}coverage {:.1}% ({}/{} lines of {}), {} execs, {} watchdog restarts",
        result.final_coverage * 100.0,
        result.lines.count_in(&result.map, result.file),
        result.map.file_lines(result.file),
        result.map.file_name(result.file),
        result.execs,
        result.restarts,
    );
    let es = &result.engine_stats;
    if es.prefix_hits + es.prefix_misses > 0 {
        println!(
            "{prefix}prefix cache: {} hits / {} misses, {} scenario units skipped, \
             {} snapshots captured, {} evicted",
            es.prefix_hits,
            es.prefix_misses,
            es.prefix_units_skipped,
            es.prefix_captures,
            es.prefix_evictions,
        );
        println!(
            "{prefix}prefix trie: {} nodes resident ({} B), dedup ratio {:.2}, \
             max restored hit depth {}",
            es.prefix_nodes,
            es.prefix_bytes_resident,
            es.prefix_dedup_ratio(),
            es.prefix_max_hit_depth,
        );
    }
    let sync = &result.sync;
    if sync.deltas_published + sync.deltas_applied > 0 {
        println!(
            "{prefix}sync: {} deltas published / {} applied, {} entries adopted, \
             {} segments merged, {} words scanned",
            sync.deltas_published,
            sync.deltas_applied,
            sync.adoptions,
            sync.segments_merged,
            sync.words_scanned,
        );
    }
    if result.diff_execs > 0 {
        println!(
            "{prefix}differential: {} execs diffed ({} backend replays), \
             {} divergent observations, {} allowed as intentional quirks, \
             {} crash-skipped",
            result.divergence.execs_compared,
            result.diff_execs,
            result.divergence.divergences,
            result.divergence.allowed,
            result.divergence.crash_skipped,
        );
    }
    let faults = &result.faults;
    if faults.hangs + faults.deaths > 0 {
        println!(
            "{prefix}faults: {} hung exec(s) reaped by the watchdog, \
             {} silent host death(s) injected",
            faults.hangs, faults.deaths,
        );
    }
    if result.alarms.coverage_plateau {
        println!(
            "{prefix}alarm: coverage plateaued — no new lines for the \
             trailing {} virtual hour(s)",
            result.alarms.plateau_hours,
        );
    }
    if result.alarms.yield_degraded {
        println!(
            "{prefix}alarm: corpus yield degraded — the last quarter of \
             the run queued under a quarter of what the first quarter did",
        );
    }

    if result.finds.is_empty() {
        println!("{prefix}no anomalies detected");
    } else {
        println!("{prefix}{} unique anomalies:", result.finds.len());
        for f in &result.finds {
            println!(
                "  [{:<17}] {} at exec {}: {}",
                format!("{}", f.kind),
                f.bug_id,
                f.exec,
                f.message
            );
        }
    }
}

/// Saves crashing inputs for reproduction (§4.5: "saves the current
/// fuzzing input to a timestamped file within a designated directory").
fn save_crashes(dir: &str, run_seed: u64, result: &CampaignResult) {
    std::fs::create_dir_all(dir).expect("create output directory");
    for f in &result.finds {
        let path = format!(
            "{dir}/crash-s{run_seed:03}-exec{:06}-{}.bin",
            f.exec, f.bug_id
        );
        let mut file = std::fs::File::create(&path).expect("create crash file");
        file.write_all(&f.input.bytes).expect("write crash input");
        let meta = format!(
            "{dir}/crash-s{run_seed:03}-exec{:06}-{}.txt",
            f.exec, f.bug_id
        );
        std::fs::write(
            &meta,
            format!("{} via {}\n{}\n", f.bug_id, f.kind, f.message),
        )
        .expect("write crash metadata");
        println!("saved {path}");
    }
}
