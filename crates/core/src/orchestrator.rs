//! Parallel campaign orchestrator: plans a grid of campaigns and fans
//! them out over a worker pool.
//!
//! The paper's evaluation is a grid of *independent* campaigns — five
//! seeds × {Intel, AMD} × {KVM, Xen, VirtualBox} × component masks,
//! each 24–48 virtual hours (§5.1). Every campaign is a pure function
//! of its [`CampaignConfig`], so the grid parallelizes perfectly:
//!
//! - [`CampaignPlan`] enumerates the cartesian product of backends ×
//!   vendors × modes × masks × seeds in a **deterministic order**;
//! - [`CampaignExecutor`] runs the jobs on a `std::thread` pool
//!   (`jobs(n)`, default = available parallelism) and returns results
//!   **in plan order**, so output is byte-identical to a serial run;
//! - [`SyncGroup`] is the corpus-sharing seam: when a plan sets a
//!   `sync_interval`, grid cells that share (backend, vendor, mode,
//!   mask, engine, budget) pool their corpora across seeds — the group
//!   becomes one scheduling unit whose members interleave in lockstep
//!   epochs, so plan-order determinism and the serial==parallel
//!   guarantee survive the sharing;
//! - [`Task`] is the generic unit the executor schedules — baseline
//!   tools (Syzkaller, IRIS, the test suites) join the same pool via
//!   [`CampaignExecutor::execute`].
//!
//! Determinism is preserved because nothing is shared *between
//! scheduling units*: an unsynced job owns its hypervisor, fuzzer, and
//! agent; a sync group owns all of its members and merges their deltas
//! in worker-id order at fixed epoch boundaries.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use nf_fuzz::{Mode, MutationStrategy, SyncMode, SyncTopology};
use nf_hv::{FaultPlan, HvConfig, L0Hypervisor};
use nf_x86::CpuVendor;

use crate::agent::ComponentMask;
use crate::campaign::{
    run_campaign, run_campaign_group_observed, CampaignConfig, CampaignResult, EXECS_PER_HOUR,
};
use crate::differential::OracleMode;
use crate::engine::{EngineMode, PrefixStoreMode};

/// A hypervisor factory shareable across worker threads.
pub type SharedFactory = Arc<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor> + Send + Sync>;

/// A named hypervisor backend of the plan grid.
#[derive(Clone)]
pub struct Backend {
    name: String,
    factory: SharedFactory,
}

impl Backend {
    /// A backend built from a factory closure.
    pub fn new<F>(name: impl Into<String>, factory: F) -> Self
    where
        F: Fn(HvConfig) -> Box<dyn L0Hypervisor> + Send + Sync + 'static,
    {
        Backend {
            name: name.into(),
            factory: Arc::new(factory),
        }
    }

    /// The backend's display name (`vkvm`, `vxen`, `vvbox`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adapts the shared factory to the boxed form `run_campaign` takes.
    pub fn factory(&self) -> Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>> {
        let f = Arc::clone(&self.factory);
        Box::new(move |cfg| f(cfg))
    }
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backend").field("name", &self.name).finish()
    }
}

/// One scheduled campaign: a backend plus its full configuration.
#[derive(Debug, Clone)]
pub struct CampaignJob {
    /// The hypervisor under test.
    pub backend: Backend,
    /// The campaign configuration (vendor, seed, mode, mask, budget).
    pub cfg: CampaignConfig,
}

impl CampaignJob {
    /// A human-readable label (`vkvm/Intel/unguided/seed3`).
    pub fn label(&self) -> String {
        format!("{}/seed{}", self.label_without_seed(), self.cfg.seed)
    }

    /// The label's seed-independent prefix (`vkvm/Intel/unguided`) —
    /// the display form of the job's grid cell.
    pub fn label_without_seed(&self) -> String {
        let mode = match self.cfg.mode {
            Mode::Guided => "guided",
            Mode::Unguided => "unguided",
        };
        let mask = if self.cfg.mask == ComponentMask::ALL {
            String::new()
        } else {
            format!(
                "/h{}v{}c{}",
                u8::from(self.cfg.mask.harness),
                u8::from(self.cfg.mask.validator),
                u8::from(self.cfg.mask.configurator)
            )
        };
        let engine = match self.cfg.engine {
            EngineMode::Snapshot => "",
            EngineMode::Rebuild => "/rebuild",
        };
        // Prefix-cached cells are labeled; the default (off) stays
        // unlabeled so existing labels are unchanged.
        let prefix = if self.cfg.prefix_cache { "/prefix" } else { "" };
        // Havoc (the default) stays unlabeled so existing labels — and
        // the determinism suites diffing them — are unchanged.
        let strategy = match self.cfg.strategy {
            MutationStrategy::Havoc => "",
            MutationStrategy::Structured => "/structured",
        };
        // Sanitizer mode (the default) likewise stays unlabeled.
        let oracle = match self.cfg.oracle {
            OracleMode::Sanitizer => String::new(),
            OracleMode::Differential => format!("/diff[{}]", self.cfg.diff_backends.join("+")),
        };
        // Lockstep (the default) stays unlabeled; async cells carry
        // their topology, which also keys them into distinct sync
        // groups via `cell_key`.
        let sync = match self.cfg.sync_mode {
            SyncMode::Lockstep => String::new(),
            SyncMode::Async => format!("/async-{}", self.cfg.sync_topology),
        };
        format!(
            "{}/{}/{mode}{mask}{engine}{prefix}{strategy}{oracle}{sync}",
            self.backend.name, self.cfg.vendor
        )
    }

    /// The sync-group identity: every axis except the seed, including
    /// the budget (groups must advance in lockstep epochs).
    fn cell_key(&self) -> String {
        format!(
            "{}|{}h|{}eph|sync{}",
            self.label_without_seed(),
            self.cfg.hours,
            self.cfg.execs_per_hour,
            self.cfg.sync_interval
        )
    }

    /// Runs the campaign to completion on the calling thread.
    pub fn run(&self) -> CampaignResult {
        run_campaign(self.backend.factory(), &self.cfg)
    }
}

/// A cartesian grid of campaigns: backends × vendors × modes × masks ×
/// seeds, all at the same virtual-hour budget.
///
/// The grid expands in a fixed nesting order (backend, then vendor,
/// then mode, then mask, then seed), so a plan is a deterministic,
/// reproducible description of an experiment — the executor's results
/// come back in exactly this order regardless of worker count.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    backends: Vec<Backend>,
    vendors: Vec<CpuVendor>,
    modes: Vec<Mode>,
    masks: Vec<ComponentMask>,
    seeds: Vec<u64>,
    hours: u32,
    execs_per_hour: u32,
    engine: EngineMode,
    prefix_cache: bool,
    cache_capacity: usize,
    prefix_budget: usize,
    sync_interval: u32,
    sync_mode: SyncMode,
    sync_topology: SyncTopology,
    strategy: MutationStrategy,
    oracle: OracleMode,
    diff_backends: Vec<String>,
    fault_plan: Option<FaultPlan>,
    watchdog_fuel: u64,
}

impl CampaignPlan {
    /// An empty plan with the paper's defaults: Intel, unguided, all
    /// components, seed 0, 24 virtual hours.
    pub fn new() -> Self {
        CampaignPlan {
            backends: Vec::new(),
            vendors: vec![CpuVendor::Intel],
            modes: vec![Mode::Unguided],
            masks: vec![ComponentMask::ALL],
            seeds: vec![0],
            hours: 24,
            execs_per_hour: EXECS_PER_HOUR,
            engine: EngineMode::Snapshot,
            prefix_cache: false,
            cache_capacity: crate::engine::DEFAULT_CACHE_CAPACITY,
            prefix_budget: crate::engine::DEFAULT_PREFIX_BUDGET,
            sync_interval: 0,
            sync_mode: SyncMode::Lockstep,
            sync_topology: SyncTopology::Tree,
            strategy: MutationStrategy::Havoc,
            oracle: OracleMode::Sanitizer,
            diff_backends: Vec::new(),
            fault_plan: None,
            watchdog_fuel: nf_hv::DEFAULT_WATCHDOG_FUEL,
        }
    }

    /// Adds a backend to the grid.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backends.push(backend);
        self
    }

    /// Sets the vendor axis.
    pub fn vendors(mut self, vendors: &[CpuVendor]) -> Self {
        self.vendors = vendors.to_vec();
        self
    }

    /// Sets the feedback-mode axis.
    pub fn modes(mut self, modes: &[Mode]) -> Self {
        self.modes = modes.to_vec();
        self
    }

    /// Sets the component-mask axis (Table 3's ablation grid).
    pub fn masks(mut self, masks: &[ComponentMask]) -> Self {
        self.masks = masks.to_vec();
        self
    }

    /// Sets the seed axis (the paper uses five runs, seeds 0..5).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the virtual duration of every campaign.
    pub fn hours(mut self, hours: u32) -> Self {
        self.hours = hours;
        self
    }

    /// Sets the executions-per-virtual-hour rate.
    pub fn execs_per_hour(mut self, execs: u32) -> Self {
        self.execs_per_hour = execs;
        self
    }

    /// Selects the iteration hot-path engine for every campaign of the
    /// grid (default: [`EngineMode::Snapshot`]). Results are
    /// bit-identical across engines; only wall-clock time changes.
    pub fn engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Enables prefix-cached execution for every campaign of the grid
    /// (default: off). Results are bit-identical with the cache on or
    /// off; only wall-clock time changes.
    pub fn prefix_cache(mut self, prefix_cache: bool) -> Self {
        self.prefix_cache = prefix_cache;
        self
    }

    /// Sets the booted-image cache capacity for every campaign of the
    /// grid (default: [`crate::engine::DEFAULT_CACHE_CAPACITY`]).
    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Sets the prefix trie's byte budget for every campaign of the
    /// grid (default: [`crate::engine::DEFAULT_PREFIX_BUDGET`]).
    /// Results are bit-identical at any budget.
    pub fn prefix_budget(mut self, prefix_budget: usize) -> Self {
        self.prefix_budget = prefix_budget;
        self
    }

    /// Sets the corpus-sync epoch length in virtual hours (default
    /// `0`: no syncing, every job independent). With `n > 0`, grid
    /// cells sharing (backend, vendor, mode, mask, engine, budget)
    /// form a [`SyncGroup`] pooling their corpora across seeds.
    pub fn sync_interval(mut self, sync_interval: u32) -> Self {
        self.sync_interval = sync_interval;
        self
    }

    /// Selects how sync groups exchange corpora (default:
    /// [`SyncMode::Lockstep`], the hourly epoch barrier). Under
    /// [`SyncMode::Async`] any non-zero `sync_interval` switches on
    /// watermark-based gossip.
    pub fn sync_mode(mut self, sync_mode: SyncMode) -> Self {
        self.sync_mode = sync_mode;
        self
    }

    /// Selects the async gossip topology (default:
    /// [`SyncTopology::Tree`]); lockstep grids ignore it.
    pub fn sync_topology(mut self, sync_topology: SyncTopology) -> Self {
        self.sync_topology = sync_topology;
        self
    }

    /// Selects the guided-mode mutation strategy for every campaign of
    /// the grid (default: [`MutationStrategy::Havoc`], bit-identical to
    /// the original engine).
    pub fn strategy(mut self, strategy: MutationStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the anomaly oracle for every campaign of the grid
    /// (default: [`OracleMode::Sanitizer`]).
    pub fn oracle(mut self, oracle: OracleMode) -> Self {
        self.oracle = oracle;
        self
    }

    /// Sets the differential-oracle backend set for every campaign of
    /// the grid (ignored under [`OracleMode::Sanitizer`]).
    pub fn diff_backends(mut self, backends: &[&str]) -> Self {
        self.diff_backends = backends.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Installs a deterministic fault plan into every campaign of the
    /// grid (default: none). A zero-rate plan is bit-identical to no
    /// plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the exec watchdog's per-execution fuel budget for every
    /// campaign of the grid (default:
    /// [`nf_hv::DEFAULT_WATCHDOG_FUEL`]; metered only when a fault
    /// plan is installed).
    pub fn watchdog_fuel(mut self, fuel: u64) -> Self {
        self.watchdog_fuel = fuel;
        self
    }

    /// Number of jobs the grid expands to.
    pub fn len(&self) -> usize {
        self.backends.len()
            * self.vendors.len()
            * self.modes.len()
            * self.masks.len()
            * self.seeds.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into jobs, in deterministic plan order.
    pub fn jobs(&self) -> Vec<CampaignJob> {
        let mut jobs = Vec::with_capacity(self.len());
        for backend in &self.backends {
            for &vendor in &self.vendors {
                for &mode in &self.modes {
                    for &mask in &self.masks {
                        for &seed in &self.seeds {
                            jobs.push(CampaignJob {
                                backend: backend.clone(),
                                cfg: CampaignConfig {
                                    vendor,
                                    hours: self.hours,
                                    execs_per_hour: self.execs_per_hour,
                                    seed,
                                    mode,
                                    mask,
                                    engine: self.engine,
                                    prefix_cache: self.prefix_cache,
                                    cache_capacity: self.cache_capacity,
                                    prefix_budget: self.prefix_budget,
                                    prefix_store: PrefixStoreMode::Cow,
                                    sync_interval: self.sync_interval,
                                    sync_mode: self.sync_mode,
                                    sync_topology: self.sync_topology,
                                    strategy: self.strategy,
                                    oracle: self.oracle,
                                    diff_backends: self.diff_backends.clone(),
                                    fault_plan: self.fault_plan,
                                    watchdog_fuel: self.watchdog_fuel,
                                },
                            });
                        }
                    }
                }
            }
        }
        jobs
    }
}

impl Default for CampaignPlan {
    fn default() -> Self {
        CampaignPlan::new()
    }
}

/// A scheduling unit of corpus-sharing campaigns: the jobs of one grid
/// cell (same backend, vendor, mode, mask, engine, and budget) across
/// seeds, with their plan indices.
///
/// A group runs as **one** pool task: its members interleave in
/// lockstep `sync_interval`-hour epochs and exchange corpus deltas in
/// worker-id (= plan) order through a `SharedCorpus`
/// ([`crate::campaign::run_campaign_group`]). Because the group — not the member — is
/// the unit the executor schedules, host parallelism cannot reorder
/// the exchanges: plan-order determinism and the serial==parallel
/// guarantee hold with sharing enabled.
pub struct SyncGroup {
    jobs: Vec<(usize, CampaignJob)>,
}

impl SyncGroup {
    /// Partitions jobs into scheduling units, preserving plan order:
    /// jobs that cannot exchange corpora — `sync_interval == 0`, or a
    /// boundary at/past the budget — become singleton groups (they run
    /// like isolated campaigns, so coalescing them would only
    /// serialize parallelizable work); syncing jobs coalesce per grid
    /// cell in first-occurrence order.
    pub fn partition(jobs: Vec<CampaignJob>) -> Vec<SyncGroup> {
        let mut groups: Vec<SyncGroup> = Vec::new();
        let mut cell_group: BTreeMap<String, usize> = BTreeMap::new();
        for (index, job) in jobs.into_iter().enumerate() {
            // Async gossip is novelty-clocked: any non-zero interval
            // syncs, so only the lockstep epoch clock can run out of
            // boundaries inside the budget.
            let barren =
                job.cfg.sync_mode == SyncMode::Lockstep && job.cfg.sync_interval >= job.cfg.hours;
            if job.cfg.sync_interval == 0 || barren {
                groups.push(SyncGroup {
                    jobs: vec![(index, job)],
                });
                continue;
            }
            let key = job.cell_key();
            match cell_group.get(&key) {
                Some(&g) => groups[g].jobs.push((index, job)),
                None => {
                    cell_group.insert(key, groups.len());
                    groups.push(SyncGroup {
                        jobs: vec![(index, job)],
                    });
                }
            }
        }
        groups
    }

    /// Number of member campaigns.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when the group has no members.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// `true` when the members will actually exchange corpora: more
    /// than one member and a sync boundary strictly inside the budget
    /// (an exchange at or past the budget could not influence any
    /// execution, so such groups run as isolated campaigns).
    pub fn is_synced(&self) -> bool {
        self.jobs.len() > 1 && {
            let cfg = &self.jobs[0].1.cfg;
            cfg.sync_interval > 0
                && (cfg.sync_mode == SyncMode::Async || cfg.sync_interval < cfg.hours)
        }
    }

    /// Display label: the single job's label, or the cell with a
    /// member count.
    pub fn label(&self) -> String {
        if self.jobs.len() == 1 {
            self.jobs[0].1.label()
        } else {
            format!(
                "sync[{} x{} seeds @{}h]",
                self.jobs[0].1.label_without_seed(),
                self.jobs.len(),
                self.jobs[0].1.cfg.sync_interval
            )
        }
    }

    /// Runs the group to completion on the calling thread; returns
    /// `(plan index, result)` pairs in member order.
    pub fn run(self) -> Vec<(usize, CampaignResult)> {
        self.run_observed(|_| {})
    }

    /// [`run`](Self::run) with a per-hour observer over the member
    /// campaigns (see [`run_campaign_group_observed`]).
    pub fn run_observed(
        self,
        observe: impl FnMut(&[crate::campaign::Campaign]),
    ) -> Vec<(usize, CampaignResult)> {
        let (indices, members): (Vec<usize>, Vec<_>) = self
            .jobs
            .into_iter()
            .map(|(index, job)| (index, (job.backend.factory(), job.cfg)))
            .unzip();
        indices
            .into_iter()
            .zip(run_campaign_group_observed(members, observe))
            .collect()
    }
}

/// A progress event, delivered once per completed job.
#[derive(Debug, Clone)]
pub struct Progress {
    /// Plan index of the job that just finished.
    pub index: usize,
    /// Total jobs in this execution.
    pub total: usize,
    /// Jobs completed so far (including this one); reaches `total`.
    pub completed: usize,
    /// The job's label.
    pub label: String,
    /// One-line result summary (coverage and finds for campaigns).
    pub summary: String,
}

/// A generic unit of work the executor can schedule: baseline runs
/// (Syzkaller, IRIS, the fixed suites) join campaigns on one pool
/// through this type.
pub struct Task<T> {
    label: String,
    run: Box<dyn FnOnce() -> T + Send>,
    retry: Option<Box<dyn Fn() -> T + Send>>,
    summarize: Box<dyn Fn(&T) -> String + Send>,
}

impl<T> Task<T> {
    /// A task running `run`, reported under `label`.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'static) -> Self {
        Task {
            label: label.into(),
            run: Box::new(run),
            retry: None,
            summarize: Box::new(|_| String::new()),
        }
    }

    /// Attaches a restart path: if `run` (or a previous retry) panics,
    /// the executor discards the wreckage and calls `retry` on the
    /// same worker — up to [`MAX_TASK_RESTARTS`] times, after which
    /// the panic propagates. Campaigns are pure functions of their
    /// config, so a retry that rebuilds from config is a
    /// *deterministic* restart: the rerun's result is identical to
    /// what the panicked attempt would have produced.
    pub fn with_retry(mut self, retry: impl Fn() -> T + Send + 'static) -> Self {
        self.retry = Some(Box::new(retry));
        self
    }

    /// Attaches a result summarizer for progress events.
    pub fn with_summary(mut self, summarize: impl Fn(&T) -> String + Send + 'static) -> Self {
        self.summarize = Box::new(summarize);
        self
    }
}

/// How many times the executor restarts a panicked task before letting
/// the panic propagate: transient wreckage (a poisoned allocation, a
/// fault-injection test harness gone wrong) gets a second chance; a
/// deterministic crash still fails loudly instead of looping.
pub const MAX_TASK_RESTARTS: u32 = 2;

type ProgressFn = dyn Fn(&Progress) + Send + Sync;
type EpochFn = dyn Fn(&EpochProgress) + Send + Sync;

/// An hourly heartbeat from a running [`SyncGroup`]: synced fleets are
/// one scheduling unit, so without this a multi-hour fleet would emit
/// no output until every member finished.
#[derive(Debug, Clone)]
pub struct EpochProgress {
    /// The group's display label.
    pub label: String,
    /// Virtual hours completed by every member.
    pub hours_done: u32,
    /// The group's total virtual-hour budget.
    pub hours_total: u32,
    /// Best member coverage fraction so far.
    pub best_coverage: f64,
}

/// Fans campaign jobs out over a `std::thread` worker pool.
///
/// Results always come back in submission order; worker count only
/// changes wall-clock time, never output. Campaigns are seeded
/// per-job, so `jobs(32)` and `jobs(1)` produce identical results.
pub struct CampaignExecutor {
    workers: usize,
    progress: Option<Arc<ProgressFn>>,
    epoch: Option<Arc<EpochFn>>,
    /// Panicked tasks restarted so far (across every `run`/`execute`
    /// call on this executor) — the supervision observability counter.
    restarts: std::sync::atomic::AtomicU64,
}

impl CampaignExecutor {
    /// An executor sized to the host's available parallelism.
    pub fn new() -> Self {
        CampaignExecutor {
            workers: default_jobs(),
            progress: None,
            epoch: None,
            restarts: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Panicked tasks this executor has restarted (a worker panic with
    /// a retry path attached counts once per restart attempt).
    pub fn worker_restarts(&self) -> u64 {
        self.restarts.load(Ordering::SeqCst)
    }

    /// Sets the worker-pool width; `0` restores the default (all
    /// available cores).
    pub fn jobs(mut self, n: usize) -> Self {
        self.workers = if n == 0 { default_jobs() } else { n };
        self
    }

    /// The configured worker-pool width.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Registers a per-job completion callback.
    ///
    /// The callback runs on worker threads, possibly concurrently with
    /// itself; `completed` is the only cross-job field.
    pub fn on_progress(mut self, f: impl Fn(&Progress) + Send + Sync + 'static) -> Self {
        self.progress = Some(Arc::new(f));
        self
    }

    /// Registers an hourly heartbeat for multi-member [`SyncGroup`]s
    /// (singleton groups stay silent — they already report through
    /// [`on_progress`](Self::on_progress) at a useful cadence). Runs on
    /// worker threads; purely observational, never affects results.
    pub fn on_epoch(mut self, f: impl Fn(&EpochProgress) + Send + Sync + 'static) -> Self {
        self.epoch = Some(Arc::new(f));
        self
    }

    /// Runs every job of `plan`; results are in plan order.
    pub fn run(&self, plan: &CampaignPlan) -> Vec<CampaignResult> {
        self.run_jobs(plan.jobs())
    }

    /// Runs explicit campaign jobs; results are in submission order.
    ///
    /// Jobs with a non-zero `sync_interval` are partitioned into
    /// [`SyncGroup`]s first — each group is one scheduling unit, so
    /// corpus sharing cannot perturb determinism. Unsynced jobs run
    /// exactly as before, one task each.
    pub fn run_jobs(&self, jobs: Vec<CampaignJob>) -> Vec<CampaignResult> {
        let total = jobs.len();
        let tasks: Vec<Task<Vec<(usize, CampaignResult)>>> = SyncGroup::partition(jobs)
            .into_iter()
            .map(|group| {
                let epoch = self.epoch.clone().filter(|_| group.len() > 1);
                let label = group.label();
                let task_label = label.clone();
                // The restart path: campaigns are pure functions of
                // their configs, so re-running the whole group from a
                // cloned job list reproduces exactly what the panicked
                // attempt would have returned (the hourly heartbeat is
                // skipped on reruns — it is observational only).
                let retry_jobs = group.jobs.clone();
                let run = move || match epoch {
                    Some(epoch) => group.run_observed(|members| {
                        epoch(&EpochProgress {
                            label: label.clone(),
                            hours_done: members[0].hours_done(),
                            hours_total: members[0].hours_total(),
                            best_coverage: members
                                .iter()
                                .map(crate::campaign::Campaign::coverage_fraction)
                                .fold(0.0, f64::max),
                        });
                    }),
                    None => group.run(),
                };
                Task::new(task_label, run)
                    .with_retry(move || {
                        SyncGroup {
                            jobs: retry_jobs.clone(),
                        }
                        .run()
                    })
                    .with_summary(|results: &Vec<(usize, CampaignResult)>| {
                        match results.as_slice() {
                            [(_, r)] => format!(
                                "cov {:.1}%, {} finds",
                                r.final_coverage * 100.0,
                                r.finds.len()
                            ),
                            many => {
                                let adopted: u64 = many.iter().map(|(_, r)| r.adopted).sum();
                                let best = many
                                    .iter()
                                    .map(|(_, r)| r.final_coverage)
                                    .fold(0.0, f64::max);
                                format!(
                                    "{} members, best cov {:.1}%, {adopted} adoptions",
                                    many.len(),
                                    best * 100.0
                                )
                            }
                        }
                    })
            })
            .collect();
        let mut slots: Vec<Option<CampaignResult>> = (0..total).map(|_| None).collect();
        for (index, result) in self.execute(tasks).into_iter().flatten() {
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("job produced no result"))
            .collect()
    }

    /// Runs arbitrary tasks on the pool; results are in submission
    /// order. This is the seam baseline tools share with campaigns.
    pub fn execute<T: Send>(&self, tasks: Vec<Task<T>>) -> Vec<T> {
        let total = tasks.len();
        let workers = self.workers.min(total).max(1);
        let next = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let queue: Vec<Mutex<Option<Task<T>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let task = queue[index]
                        .lock()
                        .expect("task queue poisoned")
                        .take()
                        .expect("task claimed twice");
                    // Worker supervision: a panicking task is caught,
                    // its wreckage dropped whole, and — when the task
                    // carries a retry path — deterministically
                    // restarted on this worker. AssertUnwindSafe is
                    // sound here because each task owns all of its
                    // state: nothing half-mutated survives the drop.
                    let label = task.label.clone();
                    let retry = task.retry;
                    let mut outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(task.run));
                    let mut attempt = 0;
                    let result = loop {
                        match outcome {
                            Ok(result) => break result,
                            Err(payload) => {
                                let Some(retry) = &retry else {
                                    std::panic::resume_unwind(payload);
                                };
                                attempt += 1;
                                if attempt > MAX_TASK_RESTARTS {
                                    std::panic::resume_unwind(payload);
                                }
                                eprintln!(
                                    "necofuzz: worker task {label:?} panicked; \
                                     restarting ({attempt}/{MAX_TASK_RESTARTS})"
                                );
                                self.restarts.fetch_add(1, Ordering::SeqCst);
                                outcome =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(retry));
                            }
                        }
                    };
                    if let Some(progress) = &self.progress {
                        progress(&Progress {
                            index,
                            total,
                            completed: completed.fetch_add(1, Ordering::SeqCst) + 1,
                            label: task.label.clone(),
                            summary: (task.summarize)(&result),
                        });
                    }
                    *slots[index].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited without storing a result")
            })
            .collect()
    }
}

impl Default for CampaignExecutor {
    fn default() -> Self {
        CampaignExecutor::new()
    }
}

/// The default worker count: the host's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_hv::{Vkvm, Vxen};

    fn small_plan() -> CampaignPlan {
        CampaignPlan::new()
            .backend(Backend::new("vkvm", |c| Box::new(Vkvm::new(c))))
            .backend(Backend::new("vxen", |c| Box::new(Vxen::new(c))))
            .vendors(&[CpuVendor::Intel, CpuVendor::Amd])
            .seeds(0..3)
            .hours(2)
            .execs_per_hour(30)
    }

    #[test]
    fn plan_expands_in_deterministic_order() {
        let plan = small_plan();
        assert_eq!(plan.len(), 12);
        let labels: Vec<String> = plan.jobs().iter().map(|j| j.label()).collect();
        assert_eq!(labels[0], "vkvm/Intel/unguided/seed0");
        assert_eq!(labels[1], "vkvm/Intel/unguided/seed1");
        assert_eq!(labels[3], "vkvm/AMD/unguided/seed0");
        assert_eq!(labels[6], "vxen/Intel/unguided/seed0");
        // Expansion is stable across calls.
        let again: Vec<String> = plan.jobs().iter().map(|j| j.label()).collect();
        assert_eq!(labels, again);
    }

    #[test]
    fn parallel_results_match_serial_exactly() {
        let plan = small_plan();
        let serial = CampaignExecutor::new().jobs(1).run(&plan);
        let parallel = CampaignExecutor::new().jobs(4).run(&plan);
        assert_eq!(serial.len(), parallel.len());
        for (index, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s, p, "job {index} diverged between jobs=1 and jobs=4");
        }
    }

    #[test]
    fn progress_fires_once_per_job_and_reaches_total() {
        let plan = small_plan();
        let events: Arc<Mutex<Vec<Progress>>> = Arc::default();
        let sink = Arc::clone(&events);
        let results = CampaignExecutor::new()
            .jobs(4)
            .on_progress(move |p| sink.lock().unwrap().push(p.clone()))
            .run(&plan);
        assert_eq!(results.len(), plan.len());
        let events = events.lock().unwrap();
        assert_eq!(events.len(), plan.len(), "one event per job");
        let mut indices: Vec<usize> = events.iter().map(|p| p.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..plan.len()).collect::<Vec<_>>());
        assert!(events.iter().any(|p| p.completed == plan.len()));
        assert!(events.iter().all(|p| p.total == plan.len()));
        assert!(events.iter().all(|p| p.summary.contains("cov")));
    }

    #[test]
    fn generic_tasks_preserve_submission_order() {
        let tasks: Vec<Task<usize>> = (0..64)
            .map(|i| Task::new(format!("t{i}"), move || i * i))
            .collect();
        let results = CampaignExecutor::new().jobs(8).execute(tasks);
        assert_eq!(results, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sync_groups_partition_per_cell_in_plan_order() {
        let plan = small_plan().sync_interval(1);
        let groups = SyncGroup::partition(plan.jobs());
        // 2 backends × 2 vendors = 4 cells of 3 seeds each.
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().all(|g| g.len() == 3 && g.is_synced()));
        assert!(groups[0].label().starts_with("sync[vkvm/Intel"));
        // Without an interval every job is its own unit.
        let solo = SyncGroup::partition(small_plan().jobs());
        assert_eq!(solo.len(), 12);
        assert!(solo.iter().all(|g| !g.is_synced()));
    }

    #[test]
    fn synced_grid_is_identical_serial_and_parallel() {
        let plan = small_plan().modes(&[Mode::Guided]).sync_interval(1);
        let serial = CampaignExecutor::new().jobs(1).run(&plan);
        let parallel = CampaignExecutor::new().jobs(8).run(&plan);
        assert_eq!(serial.len(), parallel.len());
        for (index, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(
                s, p,
                "synced job {index} diverged between jobs=1 and jobs=8"
            );
        }
        assert!(
            serial.iter().any(|r| r.adopted > 0),
            "the grid must actually exchange corpus entries"
        );
    }

    #[test]
    fn structured_grid_is_labeled_and_identical_serial_and_parallel() {
        let plan = small_plan()
            .seeds(0..2)
            .modes(&[Mode::Guided])
            .strategy(MutationStrategy::Structured);
        let labels: Vec<String> = plan.jobs().iter().map(|j| j.label()).collect();
        assert!(
            labels.iter().all(|l| l.contains("/structured/")),
            "structured cells must be distinguishable: {labels:?}"
        );
        let serial = CampaignExecutor::new().jobs(1).run(&plan);
        let parallel = CampaignExecutor::new().jobs(4).run(&plan);
        for (index, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s, p, "structured job {index} diverged across jobs=1/4");
        }
    }

    #[test]
    fn panicked_tasks_with_a_retry_path_restart_deterministically() {
        use std::sync::atomic::AtomicU64;
        // Task 3 panics on its first attempt and computes normally on
        // retry; every other task is healthy. The pool must deliver
        // the full in-order result set and count exactly one restart.
        let trips = Arc::new(AtomicU64::new(0));
        let tasks: Vec<Task<usize>> = (0..8)
            .map(|i| {
                let trips = Arc::clone(&trips);
                Task::new(format!("t{i}"), move || {
                    if i == 3 && trips.fetch_add(1, Ordering::SeqCst) == 0 {
                        panic!("injected worker death");
                    }
                    i * 10
                })
                .with_retry(move || i * 10)
            })
            .collect();
        let executor = CampaignExecutor::new().jobs(4);
        let results = executor.execute(tasks);
        assert_eq!(results, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(executor.worker_restarts(), 1);
    }

    #[test]
    fn retry_exhaustion_and_retryless_panics_propagate() {
        // A task that keeps dying must not loop forever — after
        // MAX_TASK_RESTARTS attempts the panic propagates to the
        // caller. Same for a panic with no retry path at all.
        let hopeless: Vec<Task<usize>> =
            vec![Task::new("doomed", || panic!("always")).with_retry(|| panic!("still dead"))];
        let executor = CampaignExecutor::new().jobs(1);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| executor.execute(hopeless)));
        assert!(outcome.is_err(), "exhausted retries must propagate");
        assert_eq!(executor.worker_restarts() as u32, MAX_TASK_RESTARTS);

        let bare: Vec<Task<usize>> = vec![Task::new("no-retry", || panic!("gone"))];
        let executor = CampaignExecutor::new().jobs(1);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| executor.execute(bare)));
        assert!(outcome.is_err(), "retryless panics must propagate");
        assert_eq!(executor.worker_restarts(), 0);
    }

    #[test]
    fn campaign_jobs_carry_a_retry_path_through_run_jobs() {
        // run_jobs attaches a rebuild-from-config retry to every
        // scheduled group; this test can't crash a real campaign
        // mid-flight, but it can pin the deterministic-restart
        // contract the retry path rests on: re-running a cloned job
        // list reproduces the original results exactly.
        let plan = small_plan().seeds(0..1);
        let jobs = plan.jobs();
        let first = CampaignExecutor::new().jobs(2).run_jobs(jobs.clone());
        let second = CampaignExecutor::new().jobs(2).run_jobs(jobs);
        assert_eq!(first, second, "a rebuilt job list must reproduce results");
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        let executor = CampaignExecutor::new().jobs(0);
        assert_eq!(executor.worker_count(), default_jobs());
        assert!(executor.worker_count() >= 1);
    }
}
