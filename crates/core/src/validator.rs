//! The VM state validator (paper §3.4, §4.3).
//!
//! The validator turns raw fuzz bytes into VM states **near the boundary
//! between valid and invalid**:
//!
//! 1. deserialize the raw bytes as a VMCS (or VMCB);
//! 2. *round* every field group to a specification-compliant value —
//!    sequentially over control, host-state, and guest-state fields so
//!    that inter-group constraints can be corrected deterministically;
//! 3. *verify* the result against the physical CPU (the `nf-silicon`
//!    oracle), detecting and correcting the validator's own modeling
//!    errors at runtime;
//! 4. *selectively invalidate*: flip 1–8 bits in 1–3 fields chosen by
//!    the fuzzing input, pushing the state across subtle validity
//!    boundaries.
//!
//! The rounding/prediction logic models the Bochs-derived
//! `VMenterLoadCheck{VmControls,HostState,GuestState}` routines — and
//! ships with two deliberately seeded "Bochs bugs" (mirroring the two
//! the authors found and fixed upstream, Bochs PR #51) plus no initial
//! knowledge of the CR4.PAE silent-rounding quirk. All three are
//! discovered and corrected by the oracle loop during fuzzing.

use nf_silicon::vmentry::EntryFailure;
use nf_vmx::controls::{entry as ec, exit as xc, pin, proc, proc2};
use nf_vmx::vmcb::intercept;
use nf_vmx::{CtrlKind, MsrArea, MsrAreaEntry, Vmcb, Vmcs, VmcsField, VmxCapabilities};
use nf_x86::addr::{round_phys, VirtAddr};
use nf_x86::msr::{pat_rounded, ALL_MSRS};
use nf_x86::{Cr0, Cr4, Efer, Msr, RFlags, SegReg};

/// Guest-physical address where the harness stages the MSR-load area.
pub const MSR_AREA_GPA: u64 = 0x6000;

/// A modeling error the oracle loop detected and corrected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Correction {
    /// Stable identifier of the corrected rule.
    pub rule: &'static str,
    /// What happened.
    pub detail: String,
}

/// Outcome of one oracle verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleVerdict {
    /// Model and hardware agree.
    Agree,
    /// The model predicted validity but hardware rejected the state
    /// (a missing constraint was learned).
    MissedConstraint(&'static str),
    /// The model predicted rejection but hardware accepted the state
    /// (an over-strict constraint was dropped, or a quirk was learned).
    OverStrict(&'static str),
}

/// The VM state validator.
#[derive(Debug, Clone)]
pub struct VmStateValidator {
    caps: VmxCapabilities,
    /// Seeded Bochs bug A: the SS.RPL == CS.RPL guest check is missing
    /// (under-constraint). `true` = still buggy.
    bochs_bug_ss_rpl: bool,
    /// Seeded Bochs bug B: TR type 3 (16-bit busy TSS) is rejected even
    /// outside IA-32e mode (over-constraint). `true` = still buggy.
    bochs_bug_tr_type: bool,
    /// Whether the CR4.PAE-assumed-in-IA-32e hardware quirk has been
    /// learned from the oracle.
    knows_pae_quirk: bool,
    /// Corrections applied so far, in discovery order.
    pub corrections: Vec<Correction>,
}

impl VmStateValidator {
    /// Creates a validator for the capability surface the harness VM
    /// sees (its "physical CPU").
    pub fn new(caps: VmxCapabilities) -> Self {
        VmStateValidator {
            caps,
            bochs_bug_ss_rpl: true,
            bochs_bug_tr_type: true,
            knows_pae_quirk: false,
            corrections: Vec::new(),
        }
    }

    /// Returns `true` once all seeded modeling errors have been fixed.
    pub fn fully_corrected(&self) -> bool {
        !self.bochs_bug_ss_rpl && !self.bochs_bug_tr_type && self.knows_pae_quirk
    }

    /// Marks the CR4.PAE quirk as known (used when re-deriving a
    /// validator for a new configuration without re-learning).
    pub fn apply_known_quirk(&mut self) {
        self.knows_pae_quirk = true;
    }

    /// Applies the SS.RPL fix (Bochs bug A).
    pub fn apply_ss_rpl_fix(&mut self) {
        self.bochs_bug_ss_rpl = false;
    }

    /// Applies the TR-type fix (Bochs bug B).
    pub fn apply_tr_type_fix(&mut self) {
        self.bochs_bug_tr_type = false;
    }

    /// Re-applies one persisted correction by rule name and re-records
    /// it — the checkpoint-resume path re-learning what the
    /// interrupted campaign's oracle loop already learned. Returns
    /// `false` for unknown rule names (which are skipped, keeping old
    /// checkpoints loadable).
    pub fn restore_correction(&mut self, rule: &str, detail: String) -> bool {
        let rule: &'static str = match rule {
            "cr4_pae_quirk" => {
                self.apply_known_quirk();
                "cr4_pae_quirk"
            }
            "guest.ss_rpl" => {
                self.apply_ss_rpl_fix();
                "guest.ss_rpl"
            }
            "tr_type_legacy" => {
                self.apply_tr_type_fix();
                "tr_type_legacy"
            }
            _ => return false,
        };
        self.corrections.push(Correction { rule, detail });
        true
    }

    // --- Rounding (Bochs-derived `VMenterLoadCheck*` + corrections) ----

    /// Rounds the control-field group (`VMenterLoadCheckVmControls`).
    fn round_controls(&self, v: &mut Vmcs) {
        let caps = &self.caps;
        let pinv = caps.round_control(
            CtrlKind::PinBased,
            v.read(VmcsField::PinBasedVmExecControl) as u32,
        );
        let mut procv = caps.round_control(
            CtrlKind::ProcBased,
            v.read(VmcsField::CpuBasedVmExecControl) as u32,
        );
        let mut proc2v = caps.round_control(
            CtrlKind::ProcBased2,
            v.read(VmcsField::SecondaryVmExecControl) as u32,
        );
        if proc2v != 0 {
            procv = caps.round_control(CtrlKind::ProcBased, procv | proc::SECONDARY_CONTROLS);
        }
        // Unrestricted guest requires EPT.
        if proc2v & proc2::UNRESTRICTED_GUEST != 0 && proc2v & proc2::ENABLE_EPT == 0 {
            proc2v = caps.round_control(CtrlKind::ProcBased2, proc2v | proc2::ENABLE_EPT);
            if proc2v & proc2::ENABLE_EPT == 0 {
                proc2v &= !proc2::UNRESTRICTED_GUEST;
            }
        }
        let mut exitv =
            caps.round_control(CtrlKind::Exit, v.read(VmcsField::VmExitControls) as u32);
        exitv |= xc::HOST_ADDR_SPACE_SIZE; // the modeled host is 64-bit
        let mut entryv =
            caps.round_control(CtrlKind::Entry, v.read(VmcsField::VmEntryControls) as u32);
        entryv &= !(ec::ENTRY_TO_SMM | ec::DEACT_DUAL_MONITOR);
        v.write(VmcsField::PinBasedVmExecControl, pinv as u64);
        v.write(VmcsField::CpuBasedVmExecControl, procv as u64);
        v.write(VmcsField::SecondaryVmExecControl, proc2v as u64);
        v.write(VmcsField::VmExitControls, exitv as u64);
        v.write(VmcsField::VmEntryControls, entryv as u64);

        // Physical-address fields: align and clamp.
        for f in [
            VmcsField::IoBitmapA,
            VmcsField::IoBitmapB,
            VmcsField::MsrBitmap,
            VmcsField::VirtualApicPageAddr,
            VmcsField::ApicAccessAddr,
            VmcsField::VmreadBitmap,
            VmcsField::VmwriteBitmap,
            VmcsField::PmlAddress,
        ] {
            v.write(f, round_phys(v.read(f)));
        }
        // Posted interrupts: satisfy the dependency chain or drop it.
        if pinv & pin::POSTED_INTR != 0 {
            let deps_ok =
                proc2v & proc2::VIRT_INTR_DELIVERY != 0 && exitv & xc::ACK_INTR_ON_EXIT != 0;
            if deps_ok {
                v.write(
                    VmcsField::PostedIntrNv,
                    v.read(VmcsField::PostedIntrNv) & 0xff,
                );
                v.write(
                    VmcsField::PostedIntrDescAddr,
                    round_phys(v.read(VmcsField::PostedIntrDescAddr)) & !0x3f,
                );
            } else {
                v.write(
                    VmcsField::PinBasedVmExecControl,
                    (pinv & !pin::POSTED_INTR) as u64,
                );
            }
        }
        // APIC virtualization requires the TPR shadow.
        if procv & proc::USE_TPR_SHADOW == 0 {
            let cleaned = proc2v
                & !(proc2::VIRT_X2APIC | proc2::APIC_REGISTER_VIRT | proc2::VIRT_INTR_DELIVERY);
            v.write(VmcsField::SecondaryVmExecControl, cleaned as u64);
        } else {
            v.write(
                VmcsField::TprThreshold,
                v.read(VmcsField::TprThreshold) & 0xf,
            );
        }
        // EPTP: keep the fuzz-chosen address bits but force a legal
        // format (WB, 4-level walk, reserved clear).
        if proc2v & proc2::ENABLE_EPT != 0 {
            let addr = round_phys(v.read(VmcsField::EptPointer));
            v.write(VmcsField::EptPointer, addr | 6 | (3 << 3));
        }
        if proc2v & proc2::ENABLE_VPID != 0 && v.read(VmcsField::Vpid) == 0 {
            v.write(VmcsField::Vpid, 1);
        }
        v.write(
            VmcsField::Cr3TargetCount,
            v.read(VmcsField::Cr3TargetCount) % 5,
        );
        // Small preemption-timer values keep timer exits reachable
        // within the runtime phase's iteration budget.
        v.write(
            VmcsField::VmxPreemptionTimerValue,
            v.read(VmcsField::VmxPreemptionTimerValue) % 4,
        );
        // MSR areas: small counts at the staged address.
        for (count_f, addr_f) in [
            (
                VmcsField::VmExitMsrStoreCount,
                VmcsField::VmExitMsrStoreAddr,
            ),
            (VmcsField::VmExitMsrLoadCount, VmcsField::VmExitMsrLoadAddr),
            (
                VmcsField::VmEntryMsrLoadCount,
                VmcsField::VmEntryMsrLoadAddr,
            ),
        ] {
            let count = v.read(count_f) % 4;
            v.write(count_f, count);
            if count != 0 {
                v.write(addr_f, MSR_AREA_GPA);
            }
        }
        // Event injection: round to a deliverable event or clear it.
        let inj = nf_x86::EventInjection(v.read(VmcsField::VmEntryIntrInfoField) as u32);
        if inj.valid() && inj.check().is_err() {
            let vector = nf_x86::Vector((inj.0 & 0xff) as u8 & 31);
            let fixed = nf_x86::EventInjection::build(
                vector,
                nf_x86::EventType::HardException,
                vector.has_error_code(),
                true,
            );
            v.write(VmcsField::VmEntryIntrInfoField, fixed.0 as u64);
        }
    }

    /// Rounds the host-state group (`VMenterLoadCheckHostState`).
    fn round_host(&self, v: &mut Vmcs) {
        let caps = &self.caps;
        v.write(
            VmcsField::HostCr0,
            caps.round_cr0(v.read(VmcsField::HostCr0), false),
        );
        v.write(
            VmcsField::HostCr4,
            caps.round_cr4(v.read(VmcsField::HostCr4)) | Cr4::PAE,
        );
        v.write(
            VmcsField::HostCr3,
            v.read(VmcsField::HostCr3) & ((1 << 46) - 1),
        );
        // Selectors: clear TI/RPL, keep the index; CS/TR must be nonzero.
        for f in [
            VmcsField::HostEsSelector,
            VmcsField::HostCsSelector,
            VmcsField::HostSsSelector,
            VmcsField::HostDsSelector,
            VmcsField::HostFsSelector,
            VmcsField::HostGsSelector,
            VmcsField::HostTrSelector,
        ] {
            v.write(f, v.read(f) & 0xfff8);
        }
        if v.read(VmcsField::HostCsSelector) == 0 {
            v.write(VmcsField::HostCsSelector, 0x08);
        }
        if v.read(VmcsField::HostTrSelector) == 0 {
            v.write(VmcsField::HostTrSelector, 0x40);
        }
        for f in [
            VmcsField::HostFsBase,
            VmcsField::HostGsBase,
            VmcsField::HostTrBase,
            VmcsField::HostGdtrBase,
            VmcsField::HostIdtrBase,
            VmcsField::HostIa32SysenterEsp,
            VmcsField::HostIa32SysenterEip,
            VmcsField::HostRip,
            VmcsField::HostRsp,
        ] {
            v.write(f, VirtAddr(v.read(f)).canonicalized().0);
        }
        // Inter-group constraint: the exit controls (group 1) force a
        // 64-bit host, so EFER/PAT loaded on exit must agree.
        let exitv = v.read(VmcsField::VmExitControls) as u32;
        if exitv & xc::LOAD_PAT != 0 {
            v.write(
                VmcsField::HostIa32Pat,
                pat_rounded(v.read(VmcsField::HostIa32Pat)),
            );
        }
        if exitv & xc::LOAD_EFER != 0 {
            let efer = (v.read(VmcsField::HostIa32Efer) & Efer::DEFINED) | Efer::LME | Efer::LMA;
            v.write(VmcsField::HostIa32Efer, efer);
        }
    }

    /// Rounds the guest-state group (`VMenterLoadCheckGuestState`).
    fn round_guest(&self, v: &mut Vmcs) {
        let caps = &self.caps;
        let proc2v =
            if v.read(VmcsField::CpuBasedVmExecControl) as u32 & proc::SECONDARY_CONTROLS != 0 {
                v.read(VmcsField::SecondaryVmExecControl) as u32
            } else {
                0
            };
        let unrestricted = proc2v & proc2::UNRESTRICTED_GUEST != 0;
        let entryv = v.read(VmcsField::VmEntryControls) as u32;
        let ia32e = entryv & ec::IA32E_MODE_GUEST != 0;

        let mut cr0 = caps.round_cr0(v.read(VmcsField::GuestCr0), unrestricted);
        let mut cr4 = caps.round_cr4(v.read(VmcsField::GuestCr4));
        if ia32e {
            // Inter-group constraint from the entry controls: IA-32e
            // needs paging. Until the oracle teaches the validator the
            // CR4.PAE quirk, the SDM reading forces PAE too (paper §4.3:
            // "if IA32_EFER.LME is set ... while CR4.PAE is unset, the
            // validator forces this bit to 1").
            cr0 |= Cr0::PG | Cr0::PE;
            if !self.knows_pae_quirk {
                cr4 |= Cr4::PAE;
            }
        } else {
            cr4 &= !Cr4::PCIDE;
        }
        v.write(VmcsField::GuestCr0, cr0);
        v.write(VmcsField::GuestCr4, cr4);
        v.write(
            VmcsField::GuestCr3,
            v.read(VmcsField::GuestCr3) & ((1 << 46) - 1),
        );

        if entryv & ec::LOAD_EFER != 0 {
            let mut efer = v.read(VmcsField::GuestIa32Efer) & Efer::DEFINED;
            if ia32e {
                efer |= Efer::LMA | Efer::LME;
            } else {
                efer &= !Efer::LMA;
                if cr0 & Cr0::PG != 0 {
                    efer &= !Efer::LME;
                }
            }
            v.write(VmcsField::GuestIa32Efer, efer);
        }
        if entryv & ec::LOAD_DEBUG_CONTROLS != 0 {
            v.write(
                VmcsField::GuestDr7,
                (v.read(VmcsField::GuestDr7) & 0xffff_ffff) | (1 << 10),
            );
            v.write(
                VmcsField::GuestIa32Debugctl,
                v.read(VmcsField::GuestIa32Debugctl) & 0xffc3,
            );
        }
        if entryv & ec::LOAD_PAT != 0 {
            v.write(
                VmcsField::GuestIa32Pat,
                pat_rounded(v.read(VmcsField::GuestIa32Pat)),
            );
        }
        if entryv & ec::LOAD_PERF_GLOBAL_CTRL != 0 {
            v.write(
                VmcsField::GuestIa32PerfGlobalCtrl,
                v.read(VmcsField::GuestIa32PerfGlobalCtrl) & 0x7_0000_000f,
            );
        }

        let mut rflags = RFlags::new(v.read(VmcsField::GuestRflags)).rounded();
        if ia32e || cr0 & Cr0::PE == 0 {
            rflags = RFlags::new(rflags.0 & !RFlags::VM);
        }
        v.write(VmcsField::GuestRflags, rflags.0);
        let v86 = rflags.has(RFlags::VM);
        if v86 {
            // Virtual-8086 mode pins base/limit/AR of every user segment
            // (SDM 26.3.1.2); only the selectors keep fuzz entropy.
            for reg in [
                SegReg::Cs,
                SegReg::Ss,
                SegReg::Ds,
                SegReg::Es,
                SegReg::Fs,
                SegReg::Gs,
            ] {
                let mut s = v.guest_segment(reg);
                s.base = (s.selector.0 as u64) << 4;
                s.limit = 0xffff;
                s.ar = nf_x86::AccessRights::new(0xf3);
                v.set_guest_segment(reg, s);
            }
        }

        // Segments. The raw AR bits are mapped onto the nearest legal
        // shape, keeping as much fuzz entropy as possible. (In V86 mode
        // the segments were already pinned above.)
        if !v86 {
            let cs = {
                let mut s = v.guest_segment(SegReg::Cs);
                // Legal types map to themselves (rounding must be
                // idempotent); everything else folds onto the nearest one.
                let legal: &[u8] = if unrestricted {
                    &[3, 9, 11, 15]
                } else {
                    &[9, 11, 13, 15]
                };
                let raw_t = s.ar.typ();
                let t = if legal.contains(&raw_t) {
                    raw_t
                } else {
                    legal[((raw_t >> 1) & 3) as usize]
                };
                s.ar = nf_x86::AccessRights::build(
                    t,
                    true,
                    s.ar.dpl(),
                    true,
                    false,
                    ia32e,
                    s.ar.db() && !ia32e,
                    s.ar.granularity(),
                );
                s = s.round_granularity();
                s.base &= 0xffff_ffff;
                s
            };
            v.set_guest_segment(SegReg::Cs, cs);

            let mut ss = v.guest_segment(SegReg::Ss);
            if !ss.ar.unusable() {
                let t = if ss.ar.typ() & 4 != 0 { 7 } else { 3 };
                ss.ar = nf_x86::AccessRights::build(
                    t,
                    true,
                    ss.ar.dpl(),
                    true,
                    false,
                    false,
                    ss.ar.db(),
                    ss.ar.granularity(),
                );
                ss = ss.round_granularity();
                ss.base &= 0xffff_ffff;
            }
            // Bochs bug A (seeded): the SS.RPL == CS.RPL constraint is
            // missing from the model, so rounding leaves the fuzzed RPL —
            // the oracle will reject such states until the bug is corrected.
            if !self.bochs_bug_ss_rpl {
                ss.selector = nf_x86::Selector((ss.selector.0 & !3) | (cs.selector.0 & 3));
            }
            v.set_guest_segment(SegReg::Ss, ss);

            for reg in [SegReg::Ds, SegReg::Es, SegReg::Fs, SegReg::Gs] {
                let mut s = v.guest_segment(reg);
                if s.ar.unusable() {
                    s.ar = nf_x86::AccessRights::new(nf_x86::AccessRights::UNUSABLE);
                } else {
                    let code = s.ar.typ() & 8 != 0;
                    let t = if code { 0xb } else { 0x3 }; // readable code / writable data, accessed
                    s.ar = nf_x86::AccessRights::build(
                        t,
                        true,
                        s.ar.dpl(),
                        true,
                        false,
                        false,
                        s.ar.db(),
                        s.ar.granularity(),
                    );
                    s = s.round_granularity();
                }
                s.base = VirtAddr(s.base).canonicalized().0;
                v.set_guest_segment(reg, s);
            }
        }

        let mut tr = v.guest_segment(SegReg::Tr);
        // Bochs bug B (seeded): the model believes TR must always be a
        // 64-bit busy TSS (type 11); legacy type 3 is legal off IA-32e.
        let tr_type = if self.bochs_bug_tr_type || ia32e {
            11
        } else if tr.ar.typ() == 3 {
            3
        } else {
            11
        };
        tr.ar = nf_x86::AccessRights::build(
            tr_type,
            false,
            0,
            true,
            false,
            false,
            false,
            tr.ar.granularity(),
        );
        tr.selector = nf_x86::Selector(tr.selector.0 & !0x4);
        tr = tr.round_granularity();
        tr.base = VirtAddr(tr.base).canonicalized().0;
        v.set_guest_segment(SegReg::Tr, tr);

        let mut ldtr = v.guest_segment(SegReg::Ldtr);
        if !ldtr.ar.unusable() {
            ldtr.ar = nf_x86::AccessRights::build(2, false, 0, true, false, false, false, false);
            ldtr.selector = nf_x86::Selector(ldtr.selector.0 & !0x4);
            ldtr.limit &= 0xffff;
            ldtr.base = VirtAddr(ldtr.base).canonicalized().0;
        }
        v.set_guest_segment(SegReg::Ldtr, ldtr);

        for (base_f, limit_f) in [
            (VmcsField::GuestGdtrBase, VmcsField::GuestGdtrLimit),
            (VmcsField::GuestIdtrBase, VmcsField::GuestIdtrLimit),
        ] {
            v.write(base_f, VirtAddr(v.read(base_f)).canonicalized().0);
            v.write(limit_f, v.read(limit_f) & 0xffff);
        }

        let rip = v.read(VmcsField::GuestRip);
        if ia32e {
            v.write(VmcsField::GuestRip, VirtAddr(rip).canonicalized().0);
        } else {
            v.write(VmcsField::GuestRip, rip & 0xffff_ffff);
        }

        // Activity state: all four architectural states are *valid* for
        // entry (which is precisely what makes Xen's pass-through bug
        // reachable); reserved values are rounded away.
        v.write(
            VmcsField::GuestActivityState,
            v.read(VmcsField::GuestActivityState) % 4,
        );
        let intr = nf_x86::Interruptibility(v.read(VmcsField::GuestInterruptibilityInfo) as u32)
            .rounded(RFlags::new(v.read(VmcsField::GuestRflags)));
        let intr = if v.read(VmcsField::GuestActivityState) == 1 {
            nf_x86::Interruptibility(
                intr.0 & !(nf_x86::Interruptibility::STI | nf_x86::Interruptibility::MOV_SS),
            )
        } else {
            intr
        };
        v.write(VmcsField::GuestInterruptibilityInfo, intr.0 as u64);
        v.write(
            VmcsField::GuestPendingDbgExceptions,
            v.read(VmcsField::GuestPendingDbgExceptions) & (0xf | (1 << 12) | (1 << 14)),
        );
        let shadowing = proc2v & proc2::VMCS_SHADOWING != 0;
        if !shadowing || v.read(VmcsField::VmcsLinkPointer) != u64::MAX {
            v.write(VmcsField::VmcsLinkPointer, u64::MAX);
        }
        // PDPTEs: clear reserved bits when present.
        for f in [
            VmcsField::GuestPdpte0,
            VmcsField::GuestPdpte1,
            VmcsField::GuestPdpte2,
            VmcsField::GuestPdpte3,
        ] {
            let p = v.read(f);
            if p & 1 != 0 {
                v.write(f, p & !0b1_1110_0110);
            }
        }
    }

    /// Full sequential rounding: control → host → guest (paper §4.3).
    pub fn round(&self, raw: &Vmcs) -> Vmcs {
        let mut v = raw.clone();
        // Read-only data fields cannot be written through `vmwrite`; the
        // effective VMCS12 content is whatever the last exit stored —
        // zero before the first launch.
        for &f in VmcsField::ALL {
            if !f.writable() {
                v.write(f, 0);
            }
        }
        // Bochs's validation model zeroes fields of features it does not
        // implement; keep only their low bits as mutation targets.
        for f in [
            VmcsField::EoiExitBitmap0,
            VmcsField::EoiExitBitmap1,
            VmcsField::EoiExitBitmap2,
            VmcsField::EoiExitBitmap3,
            VmcsField::XssExitBitmap,
            VmcsField::EnclsExitingBitmap,
            VmcsField::TscOffset,
            VmcsField::TscMultiplier,
            VmcsField::ExecutiveVmcsPointer,
            VmcsField::SpptPointer,
            VmcsField::HlatPointer,
            VmcsField::GuestBndcfgs,
            VmcsField::GuestIa32RtitCtl,
            VmcsField::GuestIa32Pkrs,
            VmcsField::HostIa32Pkrs,
            VmcsField::GuestSCet,
            VmcsField::GuestSsp,
            VmcsField::GuestIntrSspTableAddr,
            VmcsField::HostSCet,
            VmcsField::HostSsp,
            VmcsField::GuestSmbase,
            VmcsField::VmFunctionControl,
            VmcsField::EptpListAddress,
            VmcsField::VeInfoAddress,
            VmcsField::EptpIndex,
        ] {
            v.write(f, v.read(f) & 0xffff);
        }
        self.round_controls(&mut v);
        self.round_host(&mut v);
        self.round_guest(&mut v);
        v
    }

    /// The Bochs-derived *prediction*: what the model believes the CPU
    /// will do with this state. Deviations from `nf-silicon` are exactly
    /// the seeded modeling errors.
    pub fn predict(&self, vmcs: &Vmcs, msr_area: &MsrArea) -> Result<(), &'static str> {
        // Model-specific over-strictness first.
        let entryv = vmcs.read(VmcsField::VmEntryControls) as u32;
        let ia32e = entryv & ec::IA32E_MODE_GUEST != 0;
        if !self.knows_pae_quirk && ia32e && vmcs.read(VmcsField::GuestCr4) & Cr4::PAE == 0 {
            return Err("bochs.cr4_pae_sdm");
        }
        if self.bochs_bug_tr_type && !ia32e {
            let tr = vmcs.guest_segment(SegReg::Tr);
            if tr.ar.typ() == 3 {
                return Err("bochs.tr_type_legacy");
            }
        }
        match nf_silicon::try_vmentry(vmcs, &self.caps, msr_area) {
            Ok(_) => Ok(()),
            Err(failure) => {
                let rule = failure.rule();
                // Model-specific under-constraint: the missing SS.RPL
                // check makes the model blind to this failure.
                if self.bochs_bug_ss_rpl && rule == "guest.ss_rpl" {
                    return Ok(());
                }
                Err(rule)
            }
        }
    }

    /// Verifies a state on the physical CPU and corrects the model on
    /// disagreement (paper §3.4: "using hardware behavior as ground
    /// truth to detect and correct modeling inaccuracies at runtime").
    pub fn verify_on_oracle(&mut self, vmcs: &Vmcs, msr_area: &MsrArea) -> OracleVerdict {
        let prediction = self.predict(vmcs, msr_area);
        let oracle = nf_silicon::try_vmentry(vmcs, &self.caps, msr_area);
        match (prediction, oracle) {
            (Ok(()), Ok(_)) => OracleVerdict::Agree,
            (Err(_), Err(_)) => OracleVerdict::Agree,
            (Ok(()), Err(failure)) => {
                let rule = match failure {
                    EntryFailure::InvalidGuestState(ref e) if e.rule == "guest.ss_rpl" => {
                        self.bochs_bug_ss_rpl = false;
                        self.corrections.push(Correction {
                            rule: "guest.ss_rpl",
                            detail: "learned missing constraint: SS.RPL must equal CS.RPL".into(),
                        });
                        "guest.ss_rpl"
                    }
                    ref f => {
                        let r = f.rule();
                        self.corrections.push(Correction {
                            rule: "oracle.missed",
                            detail: format!("hardware rejected a predicted-valid state: {r}"),
                        });
                        "oracle.missed"
                    }
                };
                OracleVerdict::MissedConstraint(rule)
            }
            (Err(rule), Ok(_)) => {
                match rule {
                    "bochs.cr4_pae_sdm" => {
                        self.knows_pae_quirk = true;
                        self.corrections.push(Correction {
                            rule: "cr4_pae_quirk",
                            detail: "learned quirk: CPU assumes CR4.PAE in IA-32e mode".into(),
                        });
                    }
                    "bochs.tr_type_legacy" => {
                        self.bochs_bug_tr_type = false;
                        self.corrections.push(Correction {
                            rule: "tr_type_legacy",
                            detail: "dropped over-strict check: TR type 3 is legal outside \
                                     IA-32e"
                                .into(),
                        });
                    }
                    other => {
                        self.corrections.push(Correction {
                            rule: "oracle.overstrict",
                            detail: format!("hardware accepted a predicted-invalid state: {other}"),
                        });
                    }
                }
                OracleVerdict::OverStrict(rule)
            }
        }
    }

    /// Selective invalidation (paper §4.3): flips 1–8 bits in 1–3 fields
    /// chosen by the mutation directives.
    pub fn mutate(&self, vmcs: &Vmcs, directives: &[u8]) -> Vmcs {
        let mut v = vmcs.clone();
        let d = |i: usize| directives.get(i).copied().unwrap_or(0);
        let field_count = 1 + (d(0) % 3) as usize;
        for fi in 0..field_count {
            let base = 1 + fi * 9;
            let idx = ((d(base) as usize) << 8 | d(base + 1) as usize) % VmcsField::ALL.len();
            let field = VmcsField::ALL[idx];
            let width = field.width().bits();
            let bit_count = 1 + (d(base + 2) % 8) as u32;
            let mut value = v.read(field);
            for bi in 0..bit_count {
                // AFL-style bias: half of the flips target the low
                // (architecturally defined) bit region, where the
                // security-critical semantics live (paper §4.3: "focusing
                // bit flips on security-critical areas").
                let raw = d(base + 3 + bi as usize) as u32;
                let bit = if raw & 1 == 0 {
                    (raw >> 1) % width.min(16)
                } else {
                    raw % width
                };
                value ^= 1 << bit;
            }
            v.write(field, value);
        }
        v
    }

    /// The full generation pipeline: raw seed → round → oracle verify →
    /// selective invalidation. Returns the near-boundary VMCS and the
    /// staged MSR area.
    pub fn generate(
        &mut self,
        seed: &[u8],
        directives: &[u8],
        msr_bytes: &[u8],
    ) -> (Vmcs, MsrArea) {
        let raw = Vmcs::from_bytes(seed);
        let rounded = self.round(&raw);
        let msr_area = self.round_msr_area(&rounded, msr_bytes);
        self.verify_on_oracle(&rounded, &msr_area);
        let near_boundary = self.mutate(&rounded, directives);
        // A second oracle comparison on the perturbed state doubles as
        // the self-test of the model's failure prediction.
        self.verify_on_oracle(&near_boundary, &msr_area);
        (near_boundary, msr_area)
    }

    /// Builds the MSR-load area the VMCS references: indices are rounded
    /// onto the architectural MSR catalogue; **values are kept raw** —
    /// value legality is exactly what the L0 hypervisor must check
    /// (CVE-2024-21106 territory).
    pub fn round_msr_area(&self, vmcs: &Vmcs, msr_bytes: &[u8]) -> MsrArea {
        let count = vmcs.read(VmcsField::VmEntryMsrLoadCount) as usize;
        let mut area = MsrArea::from_bytes(msr_bytes, count);
        for e in &mut area.entries {
            e.index = ALL_MSRS[e.index as usize % ALL_MSRS.len()].index();
        }
        area
    }

    // --- AMD (VMCB) side -------------------------------------------------

    /// Rounds a raw VMCB to a `vmrun`-accepted state, mirroring the APM
    /// canonicalization checks. `EFER.LMA` is deliberately left as the
    /// fuzz input chose it: the APM does not constrain it, and the
    /// `LMA && !PG` states this produces are the paper's Xen bugs.
    pub fn round_vmcb(&self, raw: &Vmcb) -> Vmcb {
        let mut v = *raw;
        v.control.intercepts |= intercept::VMRUN;
        if v.control.guest_asid == 0 {
            v.control.guest_asid = 1;
        }
        v.save.efer = (v.save.efer & Efer::DEFINED) | Efer::SVME;
        v.save.cr0 &= 0xffff_ffff & Cr0::DEFINED;
        if v.save.cr0 & Cr0::NW != 0 && v.save.cr0 & Cr0::CD == 0 {
            v.save.cr0 &= !Cr0::NW;
        }
        v.save.cr3 &= (1 << 46) - 1;
        v.save.cr4 &= Cr4::DEFINED;
        v.save.dr6 &= 0xffff_ffff;
        v.save.dr7 &= 0xffff_ffff;
        if v.save.efer & Efer::LME != 0 && v.save.cr0 & Cr0::PG != 0 {
            v.save.cr4 |= Cr4::PAE;
            v.save.cr0 |= Cr0::PE;
            if v.save.cs.ar.long() && v.save.cs.ar.db() {
                v.save.cs.ar.0 &= !(1 << 14);
            }
        }
        v.control.np_enable &= 1;
        v.control.ncr3 &= (1 << 46) - 1;
        v.control.iopm_base_pa = round_phys(v.control.iopm_base_pa);
        v.control.msrpm_base_pa = round_phys(v.control.msrpm_base_pa);
        v.save.g_pat = pat_rounded(v.save.g_pat);
        v
    }

    /// Bit-level VMCB mutation over the serialized layout.
    pub fn mutate_vmcb(&self, vmcb: &Vmcb, directives: &[u8]) -> Vmcb {
        let mut bytes = vmcb.to_bytes();
        let d = |i: usize| directives.get(i).copied().unwrap_or(0);
        let flips = 1 + (d(0) % 8) as usize;
        for i in 0..flips {
            let off = (d(1 + i * 2) as usize) << 8 | d(2 + i * 2) as usize;
            let off = off % bytes.len();
            bytes[off] ^= 1 << (d(3 + i) % 8);
        }
        Vmcb::from_bytes(&bytes)
    }

    /// Full AMD pipeline: raw → round → oracle verify → mutate.
    pub fn generate_vmcb(&mut self, seed: &[u8], directives: &[u8]) -> Vmcb {
        let raw = Vmcb::from_bytes(seed);
        let rounded = self.round_vmcb(&raw);
        // Oracle comparison on the AMD side: VMRUN accept/reject.
        let predicted = nf_silicon::check_vmrun(&rounded, true).is_ok();
        if !predicted {
            self.corrections.push(Correction {
                rule: "svm.round_incomplete",
                detail: "vmrun oracle rejected a rounded VMCB".into(),
            });
        }
        self.mutate_vmcb(&rounded, directives)
    }

    /// Builds a raw MSR area directly from bytes (used by harness code
    /// that bypasses the validator in ablation runs).
    pub fn raw_msr_area(msr_bytes: &[u8], count: usize) -> MsrArea {
        let mut area = MsrArea::from_bytes(msr_bytes, count);
        for e in &mut area.entries {
            e.index = ALL_MSRS[e.index as usize % ALL_MSRS.len()].index();
        }
        area
    }
}

/// Helper: a canonical MSR-load entry for tests and examples.
pub fn msr_entry(msr: Msr, value: u64) -> MsrAreaEntry {
    MsrAreaEntry {
        index: msr.index(),
        value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_x86::segment::Segment;
    use nf_x86::{CpuVendor, FeatureSet};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn caps() -> VmxCapabilities {
        VmxCapabilities::from_features(FeatureSet::default_for(CpuVendor::Intel))
    }

    fn random_seed(rng: &mut SmallRng) -> Vec<u8> {
        let mut bytes = vec![0u8; Vmcs::BYTES];
        rng.fill(&mut bytes[..]);
        bytes
    }

    #[test]
    fn rounded_random_states_pass_oracle_after_corrections() {
        let mut validator = VmStateValidator::new(caps());
        let mut rng = SmallRng::seed_from_u64(42);
        // Warm-up: let the oracle loop correct the seeded model bugs.
        for _ in 0..64 {
            let seed = random_seed(&mut rng);
            let raw = Vmcs::from_bytes(&seed);
            let rounded = validator.round(&raw);
            validator.verify_on_oracle(&rounded, &MsrArea::new());
        }
        assert!(!validator.bochs_bug_ss_rpl, "SS.RPL bug must be learned");
        // After corrections, rounding must be sound: every rounded state
        // enters on the oracle.
        let mut accepted = 0;
        for _ in 0..64 {
            let seed = random_seed(&mut rng);
            let rounded = validator.round(&Vmcs::from_bytes(&seed));
            if nf_silicon::try_vmentry(&rounded, &caps(), &MsrArea::new()).is_ok() {
                accepted += 1;
            }
        }
        assert!(accepted >= 62, "rounding soundness: {accepted}/64 accepted");
    }

    /// Builds a valid legacy-mode (non-IA-32e) VMCS.
    fn legacy_vmcs() -> Vmcs {
        let mut v = nf_silicon::golden_vmcs(&caps());
        let entry = v.read(VmcsField::VmEntryControls) & !(ec::IA32E_MODE_GUEST as u64);
        v.write(VmcsField::VmEntryControls, entry);
        v.write(VmcsField::GuestIa32Efer, 0);
        let mut cs = Segment::flat_code64();
        cs.ar = nf_x86::AccessRights::build(0xb, true, 0, true, false, false, true, true);
        v.set_guest_segment(SegReg::Cs, cs);
        v.write(VmcsField::GuestRip, 0x1000);
        assert!(
            nf_silicon::try_vmentry(&v, &caps(), &MsrArea::new()).is_ok(),
            "legacy probe state must be oracle-valid"
        );
        v
    }

    #[test]
    fn oracle_teaches_the_pae_quirk() {
        let mut validator = VmStateValidator::new(caps());
        // IA-32e guest with CR4.PAE = 0: the SDM says invalid, hardware
        // silently assumes PAE. The oracle comparison must teach it.
        let mut probe = nf_silicon::golden_vmcs(&caps());
        probe.write(
            VmcsField::GuestCr4,
            probe.read(VmcsField::GuestCr4) & !Cr4::PAE,
        );
        let verdict = validator.verify_on_oracle(&probe, &MsrArea::new());
        assert_eq!(verdict, OracleVerdict::OverStrict("bochs.cr4_pae_sdm"));
        assert!(validator.knows_pae_quirk);
        // Second encounter: model and hardware now agree.
        assert_eq!(
            validator.verify_on_oracle(&probe, &MsrArea::new()),
            OracleVerdict::Agree
        );
    }

    #[test]
    fn oracle_corrects_bochs_bug_ss_rpl() {
        let mut validator = VmStateValidator::new(caps());
        let mut probe = nf_silicon::golden_vmcs(&caps());
        let mut ss = probe.guest_segment(SegReg::Ss);
        ss.selector = nf_x86::Selector(ss.selector.0 | 3); // RPL 3 != CS.RPL 0
        probe.set_guest_segment(SegReg::Ss, ss);
        let verdict = validator.verify_on_oracle(&probe, &MsrArea::new());
        assert_eq!(verdict, OracleVerdict::MissedConstraint("guest.ss_rpl"));
        assert!(!validator.bochs_bug_ss_rpl);
        assert_eq!(
            validator.verify_on_oracle(&probe, &MsrArea::new()),
            OracleVerdict::Agree
        );
    }

    #[test]
    fn oracle_corrects_bochs_bug_tr_type() {
        let mut validator = VmStateValidator::new(caps());
        let mut probe = legacy_vmcs();
        let mut tr = probe.guest_segment(SegReg::Tr);
        tr.ar = nf_x86::AccessRights::build(3, false, 0, true, false, false, false, false);
        probe.set_guest_segment(SegReg::Tr, tr);
        assert!(
            nf_silicon::try_vmentry(&probe, &caps(), &MsrArea::new()).is_ok(),
            "16-bit busy TSS is legal outside IA-32e"
        );
        let verdict = validator.verify_on_oracle(&probe, &MsrArea::new());
        assert_eq!(verdict, OracleVerdict::OverStrict("bochs.tr_type_legacy"));
        assert!(!validator.bochs_bug_tr_type);
    }

    #[test]
    fn fuzzing_loop_corrects_ss_rpl_quickly() {
        // The SS.RPL gap surfaces on most random states: the generation
        // loop must self-correct within a handful of iterations.
        let mut validator = VmStateValidator::new(caps());
        let mut rng = SmallRng::seed_from_u64(7);
        let mut directives = [0u8; 28];
        for _ in 0..64 {
            let seed = random_seed(&mut rng);
            rng.fill(&mut directives[..]);
            let _ = validator.generate(&seed, &directives, &[]);
            if !validator.bochs_bug_ss_rpl {
                break;
            }
        }
        assert!(
            !validator.bochs_bug_ss_rpl,
            "Bochs bug A must be corrected by fuzzing"
        );
        let rules: Vec<&str> = validator.corrections.iter().map(|c| c.rule).collect();
        assert!(rules.contains(&"guest.ss_rpl"));
    }

    #[test]
    fn mutation_respects_field_widths() {
        let validator = VmStateValidator::new(caps());
        let golden = nf_silicon::golden_vmcs(&caps());
        for d0 in 0..=255u8 {
            let directives = [
                d0,
                d0.wrapping_mul(7),
                3,
                61,
                13,
                5,
                1,
                2,
                3,
                4,
                99,
                0,
                7,
                8,
            ];
            let mutated = validator.mutate(&golden, &directives);
            for &f in VmcsField::ALL {
                assert_eq!(mutated.read(f) & !f.width().mask(), 0, "{}", f.name());
            }
        }
    }

    #[test]
    fn mutation_stays_near_boundary() {
        let validator = VmStateValidator::new(caps());
        let golden = nf_silicon::golden_vmcs(&caps());
        let directives = [2u8, 0, 5, 3, 1, 2, 3, 4, 5, 6, 0, 9, 2, 7, 8, 9, 1, 2];
        let mutated = validator.mutate(&golden, &directives);
        let dist = golden.hamming_distance(&mutated);
        assert!(
            (1..=24).contains(&dist),
            "1-3 fields x 1-8 bits, got {dist}"
        );
    }

    #[test]
    fn rounded_vmcb_passes_vmrun() {
        let validator = VmStateValidator::new(caps());
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..64 {
            let mut bytes = vec![0u8; Vmcb::BYTES];
            rng.fill(&mut bytes[..]);
            let rounded = validator.round_vmcb(&Vmcb::from_bytes(&bytes));
            assert!(
                nf_silicon::check_vmrun(&rounded, true).is_ok(),
                "rounded VMCB must vmrun"
            );
        }
    }

    #[test]
    fn vmcb_rounding_preserves_lma_ambiguity() {
        let validator = VmStateValidator::new(caps());
        let mut vmcb = nf_silicon::golden_vmcb();
        vmcb.save.cr0 &= !Cr0::PG; // LMA stays set: the ambiguous state
        let rounded = validator.round_vmcb(&vmcb);
        assert_ne!(
            rounded.save.efer & Efer::LMA,
            0,
            "LMA must survive rounding"
        );
        assert_eq!(rounded.save.cr0 & Cr0::PG, 0);
    }

    #[test]
    fn msr_area_indices_rounded_values_raw() {
        let validator = VmStateValidator::new(caps());
        let mut vmcs = nf_silicon::golden_vmcs(&caps());
        vmcs.write(VmcsField::VmEntryMsrLoadCount, 2);
        let bytes: Vec<u8> = (0..24).map(|i| (i * 37) as u8).collect();
        let area = validator.round_msr_area(&vmcs, &bytes);
        assert_eq!(area.entries.len(), 2);
        for e in &area.entries {
            assert!(
                Msr::from_index(e.index).is_some(),
                "index rounded onto catalogue"
            );
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let mut v1 = VmStateValidator::new(caps());
        let mut v2 = VmStateValidator::new(caps());
        let seed = vec![0x5au8; Vmcs::BYTES];
        let directives = [9u8; 28];
        let (a, _) = v1.generate(&seed, &directives, &[]);
        let (b, _) = v2.generate(&seed, &directives, &[]);
        assert_eq!(a, b);
    }
}
