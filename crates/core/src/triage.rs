//! Crash triage: the indexed vulnerability-report store.
//!
//! The agent used to keep a flat `Vec<BugFind>` and linear-scan it on
//! every crash; this module promotes that into a [`CrashTriage`] index:
//! O(1) dedup by bug id via a `HashSet`, first-seen provenance kept in
//! discovery order (the order every report and test relies on), and a
//! greedy input-truncation reproducer minimizer validated against the
//! engine — the saved input is whittled down to the bytes that still
//! retrigger the bug.

use std::collections::HashSet;

use nf_fuzz::FuzzInput;
use nf_hv::{CrashKind, HvConfig, L0Hypervisor};
use nf_x86::CpuVendor;

use crate::agent::{Agent, BugFind, ComponentMask};
use crate::engine::EngineMode;

/// The deduplicating crash index. Replaces the agent's linear-scan
/// `Vec<BugFind>`: membership is a hash lookup, discovery order is
/// preserved for reporting.
#[derive(Debug, Clone, Default)]
pub struct CrashTriage {
    finds: Vec<BugFind>,
    ids: HashSet<String>,
}

impl CrashTriage {
    /// An empty index.
    pub fn new() -> Self {
        CrashTriage::default()
    }

    /// Records a report unless its bug id is already known. Returns
    /// `true` when this was the first sighting (the find keeps its
    /// first-seen provenance forever).
    pub fn record(&mut self, find: BugFind) -> bool {
        if self.ids.contains(&find.bug_id) {
            return false;
        }
        self.ids.insert(find.bug_id.clone());
        self.finds.push(find);
        true
    }

    /// `true` if a bug with this id was already recorded.
    pub fn contains(&self, bug_id: &str) -> bool {
        self.ids.contains(bug_id)
    }

    /// The finds in discovery order.
    pub fn finds(&self) -> &[BugFind] {
        &self.finds
    }

    /// Iterates the finds in discovery order.
    pub fn iter(&self) -> std::slice::Iter<'_, BugFind> {
        self.finds.iter()
    }

    /// Number of unique bugs recorded.
    pub fn len(&self) -> usize {
        self.finds.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.finds.is_empty()
    }
}

impl PartialEq for CrashTriage {
    fn eq(&self, other: &Self) -> bool {
        self.finds == other.finds
    }
}

impl<'a> IntoIterator for &'a CrashTriage {
    type Item = &'a BugFind;
    type IntoIter = std::slice::Iter<'a, BugFind>;

    fn into_iter(self) -> Self::IntoIter {
        self.finds.iter()
    }
}

/// Greedily minimizes a reproducer: zeroes ever-smaller aligned blocks
/// of the input and keeps each zeroing that still reproduces (as judged
/// by `reproduces`). The result is the same length — fuzz inputs are
/// fixed-size — but only the bytes the bug actually needs survive.
///
/// `reproduces` must return `true` for the original input; the
/// function asserts it and returns the input unchanged otherwise.
pub fn minimize_input(
    input: &FuzzInput,
    mut reproduces: impl FnMut(&FuzzInput) -> bool,
) -> FuzzInput {
    if !reproduces(input) {
        return input.clone();
    }
    let mut current = input.clone();
    let mut block = current.bytes.len() / 2;
    while block >= 16 {
        let mut off = 0;
        while off < current.bytes.len() {
            let end = (off + block).min(current.bytes.len());
            if current.bytes[off..end].iter().any(|&b| b != 0) {
                let mut candidate = current.clone();
                candidate.bytes[off..end].fill(0);
                if reproduces(&candidate) {
                    current = candidate;
                }
            }
            off = end;
        }
        block /= 2;
    }
    current
}

/// A replay oracle bound to one engine configuration: runs a candidate
/// input through a fresh [`Agent`] and reports whether `bug_id` fires.
/// This is the "validated against the engine" half of reproducer
/// minimization.
pub struct ReplayOracle {
    factory: std::rc::Rc<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
    vendor: CpuVendor,
    mask: ComponentMask,
    engine: EngineMode,
    prefix_cache: bool,
    cache_capacity: usize,
    prefix_budget: usize,
    fault_plan: Option<nf_hv::FaultPlan>,
    watchdog_fuel: u64,
}

impl ReplayOracle {
    /// An oracle replaying against `factory` with the given agent
    /// configuration.
    pub fn new(
        factory: impl Fn(HvConfig) -> Box<dyn L0Hypervisor> + 'static,
        vendor: CpuVendor,
        mask: ComponentMask,
        engine: EngineMode,
    ) -> Self {
        ReplayOracle {
            factory: std::rc::Rc::new(factory),
            vendor,
            mask,
            engine,
            prefix_cache: false,
            cache_capacity: crate::engine::DEFAULT_CACHE_CAPACITY,
            prefix_budget: crate::engine::DEFAULT_PREFIX_BUDGET,
            fault_plan: None,
            watchdog_fuel: nf_hv::DEFAULT_WATCHDOG_FUEL,
        }
    }

    /// Replays under the *content-indexed subset* of a campaign's fault
    /// plan ([`nf_hv::FaultPlan::replay_subset`]): an input that hung
    /// under injection hangs again here (so `HungExec` finds reproduce
    /// and minimize), while schedule-indexed faults — tied to the
    /// original campaign's exec positions — never fire spuriously.
    pub fn with_fault_plan(mut self, plan: nf_hv::FaultPlan) -> Self {
        self.fault_plan = Some(plan.replay_subset());
        self
    }

    /// Matches the campaign's exec-watchdog fuel budget so hang replays
    /// exhaust it the same way.
    pub fn with_watchdog_fuel(mut self, fuel: u64) -> Self {
        self.watchdog_fuel = fuel;
        self
    }

    /// Routes replays through the prefix-cached execution path, so
    /// `corpus repro` exercises exactly the engine configuration the
    /// campaign ran with; findings reproduce bit-identically with the
    /// cache on or off.
    pub fn with_prefix_cache(mut self, enabled: bool) -> Self {
        self.prefix_cache = enabled;
        self
    }

    /// Sets the booted-image cache capacity of the replay agents.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the prefix trie's byte budget of the replay agents.
    pub fn with_prefix_budget(mut self, bytes: usize) -> Self {
        self.prefix_budget = bytes;
        self
    }

    /// Replays `input` from a clean agent; returns the bugs it
    /// triggers, in detection order.
    ///
    /// Two contexts are tried: a *cold* agent (no oracle corrections —
    /// the early-campaign validator), then, if nothing fired, a
    /// *converged* one ([`Agent::converge_validator`] — the
    /// late-campaign validator crash inputs were usually saved under).
    /// The harness VM generated from an input depends on which
    /// corrections were learned at discovery time, so a single context
    /// cannot reproduce every find.
    pub fn replay(&self, input: &FuzzInput) -> Vec<(String, CrashKind, String)> {
        for converged in [false, true] {
            let mut agent = self.agent(converged);
            agent.run_iteration(input);
            if !agent.triage().is_empty() {
                return agent
                    .triage()
                    .iter()
                    .map(|f| (f.bug_id.clone(), f.kind, f.message.clone()))
                    .collect();
            }
        }
        Vec::new()
    }

    /// `true` when a clean replay of `input` (cold or converged
    /// validator) retriggers `bug_id`.
    pub fn reproduces(&self, bug_id: &str, input: &FuzzInput) -> bool {
        [false, true]
            .iter()
            .any(|&converged| self.reproduces_in(bug_id, input, converged))
    }

    /// [`minimize_input`] against this oracle for `bug_id`.
    ///
    /// The reproducing validator context is established once from the
    /// original input (cold first, like [`replay`](Self::replay)) and
    /// every truncation candidate is judged in that context alone —
    /// trying both per candidate would double the engine boots for no
    /// benefit, since a candidate only needs to reproduce somewhere
    /// and the original's context is the natural witness.
    pub fn minimize(&self, bug_id: &str, input: &FuzzInput) -> FuzzInput {
        let Some(converged) = [false, true]
            .into_iter()
            .find(|&c| self.reproduces_in(bug_id, input, c))
        else {
            return input.clone();
        };
        minimize_input(input, |candidate| {
            self.reproduces_in(bug_id, candidate, converged)
        })
    }

    /// One replay of `input` in a fixed validator context.
    fn reproduces_in(&self, bug_id: &str, input: &FuzzInput, converged: bool) -> bool {
        let mut agent = self.agent(converged);
        agent.run_iteration(input);
        agent.triage().contains(bug_id)
    }

    fn agent(&self, converged: bool) -> Agent {
        let factory = std::rc::Rc::clone(&self.factory);
        let mut agent = Agent::with_engine(
            Box::new(move |cfg| factory(cfg)),
            self.vendor,
            self.mask,
            self.engine,
        )
        .with_prefix_cache(self.prefix_cache)
        .with_cache_capacity(self.cache_capacity)
        .with_prefix_budget(self.prefix_budget);
        if let Some(plan) = self.fault_plan {
            agent = agent
                .with_fault_plan(plan)
                .with_watchdog_fuel(self.watchdog_fuel);
        }
        if converged {
            agent.converge_validator();
        }
        agent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(id: &str, exec: u64) -> BugFind {
        BugFind {
            bug_id: id.to_string(),
            kind: CrashKind::Ubsan,
            message: format!("report {id}"),
            exec,
            input: std::sync::Arc::new(FuzzInput::zeroed()),
        }
    }

    #[test]
    fn triage_dedups_and_keeps_first_seen() {
        let mut t = CrashTriage::new();
        assert!(t.record(find("a", 10)));
        assert!(t.record(find("b", 20)));
        assert!(!t.record(find("a", 30)), "duplicate id rejected");
        assert_eq!(t.len(), 2);
        assert!(t.contains("a") && t.contains("b") && !t.contains("c"));
        assert_eq!(t.finds()[0].exec, 10, "first-seen provenance kept");
        let order: Vec<&str> = t.iter().map(|f| f.bug_id.as_str()).collect();
        assert_eq!(order, ["a", "b"], "discovery order stable");
    }

    #[test]
    fn triage_equality_ignores_index_internals() {
        let mut a = CrashTriage::new();
        let mut b = CrashTriage::new();
        a.record(find("x", 1));
        b.record(find("x", 1));
        b.record(find("x", 2)); // rejected duplicate
        assert_eq!(a, b);
    }

    #[test]
    fn minimize_input_zeroes_irrelevant_bytes() {
        // The "bug" only needs byte 100 == 0x41.
        let mut input = FuzzInput::zeroed();
        for (i, b) in input.bytes.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        input.bytes[100] = 0x41;
        let minimized = minimize_input(&input, |c| c.bytes[100] == 0x41);
        assert_eq!(minimized.bytes[100], 0x41);
        assert_eq!(minimized.bytes.len(), input.bytes.len());
        let nonzero = minimized.bytes.iter().filter(|&&b| b != 0).count();
        assert!(
            nonzero <= 16,
            "only the load-bearing block survives, got {nonzero} non-zero bytes"
        );
    }

    #[test]
    fn minimize_input_returns_original_when_not_reproducing() {
        let input = FuzzInput::zeroed();
        let out = minimize_input(&input, |_| false);
        assert_eq!(out, input);
    }

    #[test]
    fn oracle_replays_and_minimizes_a_real_campaign_find() {
        use crate::campaign::{run_campaign, CampaignConfig};
        use nf_x86::CpuVendor;

        // A short Xen/Intel campaign reliably hits the wait-for-SIPI
        // hang (Table 6 bug #4).
        let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 4, 0).with_execs_per_hour(120);
        let result = run_campaign(Box::new(|c| Box::new(nf_hv::Vxen::new(c))), &cfg);
        let find = result
            .finds
            .iter()
            .find(|f| f.bug_id == "xen-wait-for-sipi")
            .expect("the campaign must find the hang");

        let oracle = ReplayOracle::new(
            |c| Box::new(nf_hv::Vxen::new(c)) as Box<dyn L0Hypervisor>,
            CpuVendor::Intel,
            ComponentMask::ALL,
            EngineMode::Snapshot,
        );
        assert!(
            oracle.reproduces(&find.bug_id, &find.input),
            "the saved input must replay against a clean engine"
        );
        let minimized = oracle.minimize(&find.bug_id, &find.input);
        assert!(
            oracle.reproduces(&find.bug_id, &minimized),
            "the minimized input must still trigger the bug"
        );
        let before = find.input.bytes.iter().filter(|&&b| b != 0).count();
        let after = minimized.bytes.iter().filter(|&&b| b != 0).count();
        assert!(
            after < before / 4,
            "truncation must strip most of the input: {before} -> {after} non-zero bytes"
        );
    }
}
