//! The VM execution harness (paper §3.3, §4.2).
//!
//! The harness is the part of the fuzz-harness VM that executes
//! instructions. It operates in two phases:
//!
//! - **Initialization phase**: a domain-specific template of the VMX/SVM
//!   setup sequence (`vmxon` → `vmclear` → `vmptrld` → `vmwrite`* →
//!   `vmlaunch`). Fuzzing input mutates instruction *ordering*,
//!   *argument values*, and *repetition counts* while preserving enough
//!   structure to avoid immediate termination.
//! - **Runtime phase**: a library of exit-triggering instruction
//!   templates (Table 1) executed in L2 and, on reflected exits, in the
//!   L1 handler context, with operands derived from fuzzing input.

use nf_fuzz::InputLayout;
use nf_hv::{L0Hypervisor, L1Result, L2Result};
use nf_silicon::{CrIndex, GuestInstr};
use nf_vmx::{MsrArea, Vmcb, Vmcs, VmcsField};
use nf_x86::msr::ALL_MSRS;
use nf_x86::{CpuVendor, Cr0, Cr4, Efer};

use crate::validator::MSR_AREA_GPA;

/// Guest-physical addresses the harness uses for its regions.
pub const VMXON_GPA: u64 = 0x1000;
/// VMCS12 region address.
pub const VMCS12_GPA: u64 = 0x2000;
/// VMCB12 region address.
pub const VMCB12_GPA: u64 = 0x5000;

/// One step of the initialization template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStep {
    /// Set `CR4.VMXE` (+ the other `vmxon` preconditions).
    EnableVmx,
    /// Set `CR4.VMXE` but leave CR0 in a state `vmxon` rejects with #GP.
    EnableVmxBadCr0,
    /// Set `EFER.SVME`.
    EnableSvm,
    /// `vmxon` with an address.
    Vmxon(u64),
    /// `vmclear` with an address.
    Vmclear(u64),
    /// Write the VMCS region revision header.
    StageRevision(u32),
    /// `vmptrld` with an address.
    Vmptrld(u64),
    /// Write the generated VMCS12 through `vmwrite`s.
    WriteVmcs,
    /// Stage the MSR-load area in guest memory.
    StageMsrArea,
    /// `vmlaunch`.
    Launch,
    /// Stage the generated VMCB12 in guest memory.
    StageVmcb,
    /// `vmrun` with an address.
    Vmrun(u64),
}

impl InitStep {
    /// Folds this step's canonical encoding (discriminant + argument)
    /// into a rolling scenario-prefix hash (see
    /// [`nf_fuzz::scenario::prefix_extend`]). Argument-less steps whose
    /// effect depends on generated state (`WriteVmcs`, `StageMsrArea`,
    /// `StageVmcb`) hash only their discriminant — the prefix root is
    /// expected to already cover the generated image digests.
    pub fn fold_prefix(self, h: u64) -> u64 {
        use nf_fuzz::scenario::prefix_extend_u64 as ext;
        match self {
            InitStep::EnableVmx => ext(h, 0),
            InitStep::EnableVmxBadCr0 => ext(h, 1),
            InitStep::EnableSvm => ext(h, 2),
            InitStep::Vmxon(addr) => ext(ext(h, 3), addr),
            InitStep::Vmclear(addr) => ext(ext(h, 4), addr),
            InitStep::StageRevision(rev) => ext(ext(h, 5), rev as u64),
            InitStep::Vmptrld(addr) => ext(ext(h, 6), addr),
            InitStep::WriteVmcs => ext(h, 7),
            InitStep::StageMsrArea => ext(h, 8),
            InitStep::Launch => ext(h, 9),
            InitStep::StageVmcb => ext(h, 10),
            InitStep::Vmrun(addr) => ext(ext(h, 11), addr),
        }
    }
}

/// One observable unit of a harness execution: the result of an init
/// step, an L2 instruction, or an L1 exit-handler action.
///
/// Events are what a mid-scenario snapshot records alongside the VM
/// state: restoring a cached prefix replays its events into the
/// caller's [`ExecObserver`] (via [`ExecEvent::replay`]) so the
/// observed stream — the differential oracle's comparison unit — is
/// bit-identical to a full replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecEvent {
    /// An initialization step completed (fires
    /// [`ExecObserver::on_init_step`]).
    Init(L1Result),
    /// A live L2 guest ran one instruction (fires
    /// [`ExecObserver::on_l2_result`]).
    L2(L2Result),
    /// The L1 exit handler ran one action (fires
    /// [`ExecObserver::on_l1_action`]).
    L1(L1Result),
}

impl ExecEvent {
    /// Fires the observer hook this event corresponds to — the same
    /// hook live execution fires, so replaying a recorded prefix is
    /// indistinguishable from re-executing it.
    pub fn replay<O: ExecObserver>(&self, observer: &mut O) {
        match self {
            ExecEvent::Init(r) => observer.on_init_step(r),
            ExecEvent::L2(r) => observer.on_l2_result(r),
            ExecEvent::L1(r) => observer.on_l1_action(r),
        }
    }
}

/// The harness phase machine threaded across scenario units: whether a
/// nested guest is live, whether the host died, and the VM-exit count.
/// [`ExecPhase::apply`] is the single transition function both the
/// full-replay loops and the prefix-cached driver use, so the two paths
/// cannot drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPhase {
    /// A nested guest is live.
    pub l2_live: bool,
    /// The host died (execution stops).
    pub host_dead: bool,
    /// VM exits triggered so far in the runtime phase.
    pub exits: u32,
}

impl ExecPhase {
    /// The phase at the start of an execution (no guest, host alive).
    pub fn boot() -> Self {
        ExecPhase {
            l2_live: false,
            host_dead: false,
            exits: 0,
        }
    }

    /// Applies one event's phase transition.
    pub fn apply(&mut self, event: &ExecEvent) {
        match event {
            ExecEvent::Init(r) | ExecEvent::L1(r) => match r {
                L1Result::L2Entered { runnable } => self.l2_live = *runnable,
                L1Result::HostDead => self.host_dead = true,
                _ => {}
            },
            ExecEvent::L2(r) => match r {
                L2Result::NoExit => {}
                L2Result::HandledByL0 => self.exits += 1,
                L2Result::ReflectedToL1(_) => {
                    self.exits += 1;
                    self.l2_live = false;
                }
                L2Result::NoGuest => self.l2_live = false,
                L2Result::HostDead => self.host_dead = true,
            },
        }
    }
}

/// The executable initialization plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitPlan {
    /// Steps in execution order.
    pub steps: Vec<InitStep>,
}

/// Outcome of running the initialization phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InitOutcome {
    /// A nested guest is live (entry succeeded and it can run).
    pub l2_live: bool,
    /// The host died during initialization (watchdog territory).
    pub host_dead: bool,
}

/// Observes the L1-visible events of one harness execution — the seam
/// the differential oracle records its canonical observation through
/// (see `crate::differential`).
///
/// Every hook has a no-op default, and the plain
/// [`ExecutionHarness::run_init`] / [`ExecutionHarness::run_runtime`]
/// entry points go through [`NopObserver`]: the observed variants are
/// monomorphized, so the unobserved hot path stays bit-identical to
/// the pre-observer code.
pub trait ExecObserver {
    /// One initialization step completed with `result`.
    fn on_init_step(&mut self, result: &L1Result) {
        let _ = result;
    }

    /// The live L2 guest ran one instruction with `result`.
    fn on_l2_result(&mut self, result: &L2Result) {
        let _ = result;
    }

    /// The L1 exit handler executed one action with `result`.
    fn on_l1_action(&mut self, result: &L1Result) {
        let _ = result;
    }
}

/// The observer behind the plain (unobserved) harness entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopObserver;

impl ExecObserver for NopObserver {}

/// The VM execution harness.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionHarness {
    /// Vendor of the virtual CPU the harness runs on.
    pub vendor: CpuVendor,
}

impl ExecutionHarness {
    /// Creates a harness for `vendor`.
    pub fn new(vendor: CpuVendor) -> Self {
        ExecutionHarness { vendor }
    }

    /// The canonical (unmutated) initialization template.
    pub fn canonical_plan(&self, revision: u32) -> InitPlan {
        let steps = match self.vendor {
            CpuVendor::Intel => vec![
                InitStep::EnableVmx,
                InitStep::Vmxon(VMXON_GPA),
                InitStep::Vmclear(VMCS12_GPA),
                InitStep::StageRevision(revision),
                InitStep::Vmptrld(VMCS12_GPA),
                InitStep::WriteVmcs,
                InitStep::StageMsrArea,
                InitStep::Launch,
            ],
            CpuVendor::Amd => vec![
                InitStep::EnableSvm,
                InitStep::StageVmcb,
                InitStep::Vmrun(VMCB12_GPA),
            ],
        };
        InitPlan { steps }
    }

    /// Builds a mutated initialization plan from the init-section bytes:
    /// byte pairs drive step swaps, duplications, skips, and argument
    /// corruption, preserving overall structure (paper §4.2). The
    /// section's sub-geometry — where the `(ctrl, arg)` pairs end and
    /// the order/duplication/drop directives sit — comes from
    /// [`InputLayout`], the same schema the structure-aware mutators
    /// write through.
    pub fn mutated_plan(&self, revision: u32, init_bytes: &[u8]) -> InitPlan {
        let mut plan = self.canonical_plan(revision);
        let b = |i: usize| init_bytes.get(i).copied().unwrap_or(0);

        // Argument corruption: low-probability, targeted. One (ctrl,
        // arg) pair per canonical step, from the pair region.
        debug_assert!(plan.steps.len() <= InputLayout::INIT_PAIRS);
        for (i, step) in plan.steps.iter_mut().enumerate() {
            let ctrl = b(i * 2);
            let arg = b(i * 2 + 1);
            match step {
                InitStep::Vmxon(addr) if ctrl & 0xf0 == 0x10 => {
                    *addr = VMXON_GPA + arg as u64; // misalignment arm
                }
                InitStep::EnableVmx if ctrl & 0xf0 == 0x50 => {
                    *step = InitStep::EnableVmxBadCr0;
                }
                InitStep::Vmclear(addr) | InitStep::Vmptrld(addr) => {
                    if ctrl & 0xf0 == 0x20 {
                        *addr = VMXON_GPA; // the vmxon-pointer arm
                    } else if ctrl & 0xf0 == 0x30 {
                        *addr = VMCS12_GPA + ((arg as u64) << 12); // other region
                    } else if ctrl & 0xf0 == 0x50 {
                        *addr = VMCS12_GPA | (arg as u64 | 1); // misaligned
                    }
                }
                InitStep::StageRevision(rev) if ctrl & 0xf0 == 0x40 => {
                    *rev = revision ^ (arg as u32 + 1); // bad-revision arm
                }
                InitStep::Vmrun(addr) if ctrl & 0xf0 == 0x10 => {
                    *addr = VMCB12_GPA + ((arg as u64 + 1) << 12); // unstaged VMCB
                }
                _ => {}
            }
        }
        // Order mutation: swap adjacent steps (the count modulus is
        // part of the shared schema — mutators only target live slots).
        let swaps = b(InputLayout::INIT_ORDER) as usize % (InputLayout::INIT_SWAPS_MAX + 1);
        for s in 0..swaps {
            let i = b(InputLayout::INIT_ORDER + 1 + s) as usize
                % plan.steps.len().saturating_sub(1).max(1);
            plan.steps.swap(i, i + 1);
        }
        // Repetition: duplicate one step.
        if b(InputLayout::INIT_DUP) & 0x3 == 0x3 {
            let i = b(InputLayout::INIT_DUP + 1) as usize % plan.steps.len();
            let step = plan.steps[i];
            plan.steps.insert(i, step);
        }
        // Skip: drop one step (never the final launch).
        if b(InputLayout::INIT_DROP) & 0x7 == 0x7 && plan.steps.len() > 2 {
            let i = b(InputLayout::INIT_DROP + 1) as usize % (plan.steps.len() - 1);
            plan.steps.remove(i);
        }
        plan
    }

    /// Executes an initialization plan against the L0 hypervisor.
    #[allow(clippy::too_many_arguments)]
    pub fn run_init(
        &self,
        hv: &mut dyn L0Hypervisor,
        plan: &InitPlan,
        vmcs12: &Vmcs,
        vmcb12: &Vmcb,
        msr_area: &MsrArea,
    ) -> InitOutcome {
        self.run_init_observed(hv, plan, vmcs12, vmcb12, msr_area, &mut NopObserver)
    }

    /// [`run_init`](Self::run_init) with an [`ExecObserver`] seeing the
    /// [`L1Result`] of every step, including a terminal `HostDead`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_init_observed<O: ExecObserver>(
        &self,
        hv: &mut dyn L0Hypervisor,
        plan: &InitPlan,
        vmcs12: &Vmcs,
        vmcb12: &Vmcb,
        msr_area: &MsrArea,
        observer: &mut O,
    ) -> InitOutcome {
        let mut phase = ExecPhase::boot();
        for step in &plan.steps {
            let result = self.exec_init_step(hv, *step, vmcs12, vmcb12, msr_area);
            observer.on_init_step(&result);
            phase.apply(&ExecEvent::Init(result));
            if phase.host_dead {
                return InitOutcome {
                    l2_live: false,
                    host_dead: true,
                };
            }
        }
        InitOutcome {
            l2_live: phase.l2_live,
            host_dead: false,
        }
    }

    /// Executes one initialization step — the per-unit kernel both
    /// [`run_init_observed`](Self::run_init_observed) and the
    /// prefix-cached driver step through.
    pub fn exec_init_step(
        &self,
        hv: &mut dyn L0Hypervisor,
        step: InitStep,
        vmcs12: &Vmcs,
        vmcb12: &Vmcb,
        msr_area: &MsrArea,
    ) -> L1Result {
        match step {
            InitStep::EnableVmx => {
                hv.l1_exec(GuestInstr::MovToCr(CrIndex::Cr4, Cr4::VMXE | Cr4::PAE));
                hv.l1_exec(GuestInstr::MovToCr(
                    CrIndex::Cr0,
                    Cr0::PE | Cr0::PG | Cr0::NE,
                ))
            }
            InitStep::EnableVmxBadCr0 => {
                hv.l1_exec(GuestInstr::MovToCr(CrIndex::Cr4, Cr4::VMXE | Cr4::PAE));
                // CR0.NE clear: vmxon must #GP.
                hv.l1_exec(GuestInstr::MovToCr(CrIndex::Cr0, Cr0::PE | Cr0::PG))
            }
            InitStep::EnableSvm => hv.l1_exec(GuestInstr::Wrmsr(
                nf_x86::Msr::Efer.index(),
                Efer::LME | Efer::LMA | Efer::SVME,
            )),
            InitStep::Vmxon(addr) => hv.l1_exec(GuestInstr::Vmxon(addr)),
            InitStep::Vmclear(addr) => hv.l1_exec(GuestInstr::Vmclear(addr)),
            InitStep::StageRevision(rev) => {
                hv.l1_stage_vmcs_region(VMCS12_GPA, rev);
                L1Result::Ok(0)
            }
            InitStep::Vmptrld(addr) => hv.l1_exec(GuestInstr::Vmptrld(addr)),
            InitStep::WriteVmcs => {
                let mut last = L1Result::Ok(0);
                for &f in VmcsField::ALL {
                    if f.writable() {
                        last = hv.l1_exec(GuestInstr::Vmwrite(f.encoding(), vmcs12.read(f)));
                    }
                }
                last
            }
            InitStep::StageMsrArea => {
                hv.l1_stage_msr_area(MSR_AREA_GPA, msr_area.clone());
                L1Result::Ok(0)
            }
            InitStep::Launch => hv.l1_exec(GuestInstr::Vmlaunch),
            InitStep::StageVmcb => {
                hv.l1_stage_vmcb(VMCB12_GPA, *vmcb12);
                L1Result::Ok(0)
            }
            InitStep::Vmrun(addr) => hv.l1_exec(GuestInstr::Vmrun(addr)),
        }
    }

    /// Decodes one L2 instruction template from a 4-byte step record
    /// (selector, two argument bytes, context byte).
    pub fn decode_l2_instr(&self, step: &[u8]) -> GuestInstr {
        let sel = step.first().copied().unwrap_or(0);
        let a = step.get(1).copied().unwrap_or(0);
        let b = step.get(2).copied().unwrap_or(0);
        let arg16 = u16::from_le_bytes([a, b]);
        let arg64 = ((a as u64) << 8 | b as u64) << ((sel as u64 % 8) * 8);
        match sel % 28 {
            0 => GuestInstr::Cpuid(a as u32),
            1 => GuestInstr::Hlt,
            2 => GuestInstr::In(arg16),
            3 => GuestInstr::Out(arg16, b as u32),
            4 => GuestInstr::Rdmsr(ALL_MSRS[a as usize % ALL_MSRS.len()].index()),
            5 => GuestInstr::Wrmsr(ALL_MSRS[a as usize % ALL_MSRS.len()].index(), arg64),
            6 => GuestInstr::Rdmsr(arg16 as u32), // raw index: unknown-MSR arms
            7 => GuestInstr::MovToCr(CrIndex::Cr0, arg64 | Cr0::PE),
            8 => GuestInstr::MovToCr(CrIndex::Cr3, arg64),
            9 => GuestInstr::MovToCr(CrIndex::Cr4, arg64),
            10 => GuestInstr::MovToCr(CrIndex::Cr8, (a & 0xf) as u64),
            11 => GuestInstr::MovFromCr(CrIndex::Cr3),
            12 => GuestInstr::MovToDr(a % 8, arg64),
            13 => GuestInstr::Rdtsc,
            14 => GuestInstr::Pause,
            15 => GuestInstr::Rdrand,
            16 => GuestInstr::Invlpg(arg64),
            17 => GuestInstr::Wbinvd,
            18 => GuestInstr::Xsetbv(arg64 & 0x7),
            19 => GuestInstr::Mwait,
            20 => GuestInstr::Monitor,
            21 => GuestInstr::Rdpmc,
            22 => GuestInstr::Rdseed,
            23 => GuestInstr::Vmcall,
            // Nested-nested attempts: VMX/SVM instructions from L2.
            24 => match self.vendor {
                CpuVendor::Intel => GuestInstr::Vmxon(arg64 & !0xfff),
                CpuVendor::Amd => GuestInstr::Vmrun(arg64 & !0xfff),
            },
            // Foreign-vendor instruction: #UD -> exception/shutdown exits.
            25 => match self.vendor {
                CpuVendor::Intel => GuestInstr::Vmrun(arg64 & !0xfff),
                CpuVendor::Amd => GuestInstr::Vmxon(arg64 & !0xfff),
            },
            // Memory access: EPT-violation / #GP / triple-fault paths.
            26 => GuestInstr::TouchMemory(arg64),
            _ => GuestInstr::Nop,
        }
    }

    /// Decodes one L1 exit-handler action.
    pub fn decode_l1_action(&self, step: &[u8]) -> GuestInstr {
        let sel = step.first().copied().unwrap_or(0);
        let a = step.get(1).copied().unwrap_or(0);
        let b = step.get(2).copied().unwrap_or(0);
        let value = u16::from_le_bytes([a, b]) as u64;
        let arg64 = || ((a as u64) << 8 | b as u64) << ((sel as u64 % 8) * 8);
        let resume = || match self.vendor {
            CpuVendor::Intel => GuestInstr::Vmresume,
            CpuVendor::Amd => GuestInstr::Vmrun(VMCB12_GPA),
        };
        match sel % 16 {
            0..=4 => resume(),
            5 => GuestInstr::Vmread(VmcsField::ALL[a as usize % VmcsField::ALL.len()].encoding()),
            6 => GuestInstr::Vmwrite(
                VmcsField::ALL[a as usize % VmcsField::ALL.len()].encoding(),
                value << (b % 48),
            ),
            7 => match self.vendor {
                CpuVendor::Intel => GuestInstr::Vmlaunch,
                CpuVendor::Amd => GuestInstr::Vmrun(VMCB12_GPA),
            },
            8 => GuestInstr::Rdmsr(ALL_MSRS[a as usize % ALL_MSRS.len()].index()),
            9 => match self.vendor {
                // Writes to the VMX capability MSRs #GP from a guest.
                CpuVendor::Intel => GuestInstr::Wrmsr(0x480 + (a as u32 % 18), value),
                CpuVendor::Amd => GuestInstr::Vmload(VMCB12_GPA),
            },
            10 => match self.vendor {
                // Raw invept/invvpid types: > 3 exercises the bad-type arms.
                CpuVendor::Intel => GuestInstr::Invept((a % 6) as u64),
                CpuVendor::Amd => GuestInstr::Vmsave(VMCB12_GPA),
            },
            11 => match self.vendor {
                CpuVendor::Intel => GuestInstr::Invvpid((a % 6) as u64),
                CpuVendor::Amd => GuestInstr::Stgi,
            },
            12 => match self.vendor {
                CpuVendor::Intel => GuestInstr::Vmptrst,
                CpuVendor::Amd => GuestInstr::Clgi,
            },
            13 => match self.vendor {
                // Load a different (zero-initialized) VMCS region, or
                // tear VMX down entirely.
                CpuVendor::Intel => {
                    if a & 1 == 0 {
                        GuestInstr::Vmptrld(VMCS12_GPA + 0x1000)
                    } else {
                        GuestInstr::Vmxoff
                    }
                }
                CpuVendor::Amd => GuestInstr::Vmmcall,
            },
            14 => match self.vendor {
                // Raw (frequently invalid) field encodings.
                CpuVendor::Intel => {
                    if a & 1 == 0 {
                        GuestInstr::Vmread(value as u32)
                    } else {
                        GuestInstr::Vmwrite(value as u32, arg64())
                    }
                }
                CpuVendor::Amd => resume(),
            },
            _ => GuestInstr::Vmcall,
        }
    }

    /// Runs the runtime phase: the tight L2/L1 loop of §4.2. Returns the
    /// number of VM exits the loop triggered.
    pub fn run_runtime(
        &self,
        hv: &mut dyn L0Hypervisor,
        runtime_bytes: &[u8],
        l2_live: bool,
    ) -> u32 {
        self.run_runtime_observed(hv, runtime_bytes, l2_live, &mut NopObserver)
    }

    /// [`run_runtime`](Self::run_runtime) with an [`ExecObserver`]
    /// seeing every [`L2Result`] and L1-action [`L1Result`].
    pub fn run_runtime_observed<O: ExecObserver>(
        &self,
        hv: &mut dyn L0Hypervisor,
        runtime_bytes: &[u8],
        l2_live: bool,
        observer: &mut O,
    ) -> u32 {
        let mut phase = ExecPhase {
            l2_live,
            host_dead: false,
            exits: 0,
        };
        for step in runtime_bytes.chunks(InputLayout::STEP_BYTES) {
            let event = self.exec_runtime_step(hv, step, phase.l2_live);
            event.replay(observer);
            phase.apply(&event);
            if phase.host_dead {
                break;
            }
        }
        phase.exits
    }

    /// Executes one 4-byte runtime step record — an L2 instruction when
    /// a nested guest is live, an L1 exit-handler action otherwise. The
    /// per-unit kernel both [`run_runtime_observed`](Self::run_runtime_observed)
    /// and the prefix-cached driver step through.
    pub fn exec_runtime_step(
        &self,
        hv: &mut dyn L0Hypervisor,
        step: &[u8],
        l2_live: bool,
    ) -> ExecEvent {
        if l2_live {
            ExecEvent::L2(hv.l2_exec(self.decode_l2_instr(step)))
        } else {
            ExecEvent::L1(hv.l1_exec(self.decode_l1_action(step)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_hv::{HvConfig, Vkvm};
    use nf_silicon::{golden_vmcb, golden_vmcs};
    use nf_vmx::VmxCapabilities;
    use nf_x86::FeatureSet;

    fn intel_setup() -> (Vkvm, ExecutionHarness, Vmcs) {
        let kvm = Vkvm::new(HvConfig::default_for(CpuVendor::Intel));
        let harness = ExecutionHarness::new(CpuVendor::Intel);
        let caps = VmxCapabilities::from_features(FeatureSet::default_for(CpuVendor::Intel));
        let vmcs = golden_vmcs(&caps);
        (kvm, harness, vmcs)
    }

    #[test]
    fn exec_phase_tracks_the_scenario_state_machine() {
        let mut phase = ExecPhase::boot();
        assert!(!phase.l2_live && !phase.host_dead && phase.exits == 0);
        phase.apply(&ExecEvent::Init(L1Result::L2Entered { runnable: true }));
        assert!(phase.l2_live);
        phase.apply(&ExecEvent::L2(L2Result::HandledByL0));
        assert_eq!(phase.exits, 1);
        phase.apply(&ExecEvent::L2(L2Result::ReflectedToL1(0x28)));
        assert_eq!(phase.exits, 2);
        assert!(!phase.l2_live, "a reflected exit returns control to L1");
        phase.apply(&ExecEvent::L1(L1Result::L2Entered { runnable: false }));
        assert!(!phase.l2_live, "a stalled entry is not live");
        phase.apply(&ExecEvent::L2(L2Result::HostDead));
        assert!(phase.host_dead);
    }

    #[test]
    fn exec_event_replay_fires_the_matching_observer_hook() {
        #[derive(Default)]
        struct Counts(u32, u32, u32);
        impl ExecObserver for Counts {
            fn on_init_step(&mut self, _: &L1Result) {
                self.0 += 1;
            }
            fn on_l2_result(&mut self, _: &L2Result) {
                self.1 += 1;
            }
            fn on_l1_action(&mut self, _: &L1Result) {
                self.2 += 1;
            }
        }
        let mut counts = Counts::default();
        ExecEvent::Init(L1Result::Ok(0)).replay(&mut counts);
        ExecEvent::L2(L2Result::NoExit).replay(&mut counts);
        ExecEvent::L2(L2Result::NoGuest).replay(&mut counts);
        ExecEvent::L1(L1Result::Ok(1)).replay(&mut counts);
        assert_eq!((counts.0, counts.1, counts.2), (1, 2, 1));
    }

    #[test]
    fn init_step_prefix_folds_are_injective_over_the_plan_vocabulary() {
        use nf_fuzz::scenario::prefix_root;
        // Every distinct step must fold the rolling hash to a distinct
        // value — a collision would alias two different scenario
        // prefixes into one trie node.
        let steps = [
            InitStep::EnableVmx,
            InitStep::EnableVmxBadCr0,
            InitStep::EnableSvm,
            InitStep::Vmxon(0x1000),
            InitStep::Vmxon(0x2000),
            InitStep::Vmclear(0x2000),
            InitStep::StageRevision(1),
            InitStep::StageRevision(2),
            InitStep::Vmptrld(0x2000),
            InitStep::WriteVmcs,
            InitStep::StageMsrArea,
            InitStep::Launch,
            InitStep::StageVmcb,
            InitStep::Vmrun(0x5000),
        ];
        let mut folded: Vec<u64> = steps.iter().map(|s| s.fold_prefix(prefix_root())).collect();
        folded.sort_unstable();
        folded.dedup();
        assert_eq!(folded.len(), steps.len(), "prefix fold collision");
    }

    #[test]
    fn canonical_plan_boots_l2_on_vkvm() {
        let (mut kvm, harness, vmcs) = intel_setup();
        let plan = harness.canonical_plan(VmxCapabilities::REVISION);
        let out = harness.run_init(&mut kvm, &plan, &vmcs, &golden_vmcb(), &MsrArea::new());
        assert!(out.l2_live, "golden state must reach L2");
        assert!(!out.host_dead);
    }

    #[test]
    fn canonical_amd_plan_boots_l2() {
        let mut kvm = Vkvm::new(HvConfig::default_for(CpuVendor::Amd));
        let harness = ExecutionHarness::new(CpuVendor::Amd);
        let caps = VmxCapabilities::from_features(FeatureSet::default_for(CpuVendor::Intel));
        let plan = harness.canonical_plan(VmxCapabilities::REVISION);
        let out = harness.run_init(
            &mut kvm,
            &plan,
            &golden_vmcs(&caps),
            &golden_vmcb(),
            &MsrArea::new(),
        );
        assert!(out.l2_live);
    }

    #[test]
    fn mutated_plans_preserve_structure() {
        let harness = ExecutionHarness::new(CpuVendor::Intel);
        let plan = harness.mutated_plan(7, &[0u8; 64]);
        assert_eq!(plan, harness.canonical_plan(7), "zero bytes = canonical");
        let mutated = harness.mutated_plan(7, &[0xff; 64]);
        assert!(!mutated.steps.is_empty());
        assert!(mutated.steps.len() <= harness.canonical_plan(7).steps.len() + 1);
    }

    #[test]
    fn runtime_loop_triggers_exits() {
        let (mut kvm, harness, vmcs) = intel_setup();
        let plan = harness.canonical_plan(VmxCapabilities::REVISION);
        let out = harness.run_init(&mut kvm, &plan, &vmcs, &golden_vmcb(), &MsrArea::new());
        assert!(out.l2_live);
        // Step records selecting cpuid (always exits, always reflected).
        let steps = [0u8, 1, 0, 0, 0, 2, 0, 0];
        let exits = harness.run_runtime(&mut kvm, &steps, true);
        assert!(exits >= 1, "cpuid from L2 must exit");
    }

    #[test]
    fn l2_decoder_covers_table1_classes() {
        use nf_silicon::InstrClass;
        let harness = ExecutionHarness::new(CpuVendor::Intel);
        let mut classes = std::collections::BTreeSet::new();
        for sel in 0..=255u8 {
            let instr = harness.decode_l2_instr(&[sel, 1, 2, 3]);
            classes.insert(format!("{:?}", instr.class()));
        }
        for want in [
            "VmxInstruction",
            "PrivilegedRegister",
            "IoMsr",
            "Misc",
            "Plain",
        ] {
            assert!(classes.contains(want), "missing class {want}");
        }
        let _ = InstrClass::Misc;
    }
}
