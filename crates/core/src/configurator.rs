//! The vCPU configurator (paper §3.5, §4.4).
//!
//! The configuration is "a bit array, where each bit indicates whether a
//! specific CPU feature is enabled or disabled", mutated from fuzzing
//! input. A hypervisor-independent core generates the [`FeatureSet`];
//! small per-hypervisor *adapters* translate it into the interface each
//! L0 actually exposes (KVM module parameters + QEMU options, Xen
//! `xl.cfg` keys, `VBoxManage` flags) and produce the [`HvConfig`] used
//! to boot the modeled host.

use nf_hv::HvConfig;
use nf_x86::{CpuFeature, CpuVendor, FeatureSet};

/// The hypervisor-independent configuration generator.
#[derive(Debug, Clone, Copy)]
pub struct VcpuConfigurator {
    /// Vendor the host CPU reports.
    pub vendor: CpuVendor,
}

impl VcpuConfigurator {
    /// Creates a configurator for `vendor`.
    pub fn new(vendor: CpuVendor) -> Self {
        VcpuConfigurator { vendor }
    }

    /// Derives a feature set + nested flag from the configuration word.
    ///
    /// The raw bits map directly onto [`CpuFeature`] bits and are then
    /// sanitized for the vendor. The base virtualization feature is kept
    /// on for 7 of 8 inputs and nesting for 15 of 16 — disabled-nested
    /// configurations still exercise the "not enabled" error arms but
    /// would otherwise waste most of the iteration budget.
    pub fn generate(&self, cfg_word: u64) -> (FeatureSet, bool) {
        let mut features = FeatureSet((cfg_word & 0x3f_ffff) as u32);
        let keep_base = (cfg_word >> 32) & 0x7 != 0;
        if keep_base {
            match self.vendor {
                CpuVendor::Intel => features.insert(CpuFeature::Vmx),
                CpuVendor::Amd => features.insert(CpuFeature::Svm),
            }
        }
        let nested = (cfg_word >> 36) & 0xf != 0;
        (features.sanitized(self.vendor), nested)
    }

    /// The default (un-fuzzed) configuration.
    pub fn default_config(&self) -> (FeatureSet, bool) {
        (FeatureSet::default_for(self.vendor), true)
    }
}

/// A per-hypervisor configuration adapter.
pub trait HvAdapter {
    /// Translates the generated configuration into a bootable
    /// [`HvConfig`] plus the host-side command line a real deployment
    /// would run (module reload + VM launch).
    fn apply(&self, features: FeatureSet, nested: bool) -> (HvConfig, String);
}

/// KVM adapter: kernel-module parameters + QEMU command line (§4.4).
#[derive(Debug, Clone, Copy)]
pub struct KvmAdapter {
    /// Vendor selects `kvm-intel.ko` vs `kvm-amd.ko`.
    pub vendor: CpuVendor,
}

impl HvAdapter for KvmAdapter {
    fn apply(&self, features: FeatureSet, nested: bool) -> (HvConfig, String) {
        let module = match self.vendor {
            CpuVendor::Intel => "kvm-intel",
            CpuVendor::Amd => "kvm-amd",
        };
        let mut params = vec![format!("nested={}", nested as u8)];
        for f in CpuFeature::ALL {
            if f.available_on(self.vendor) && !matches!(f, CpuFeature::Vmx | CpuFeature::Svm) {
                params.push(format!("{}={}", f.param_name(), features.contains(f) as u8));
            }
        }
        let cpu_flag = match self.vendor {
            CpuVendor::Intel => {
                if features.contains(CpuFeature::Vmx) {
                    "+vmx"
                } else {
                    "-vmx"
                }
            }
            CpuVendor::Amd => {
                if features.contains(CpuFeature::Svm) {
                    "+svm"
                } else {
                    "-svm"
                }
            }
        };
        let cmdline = format!(
            "modprobe -r {module} && modprobe {module} {} && qemu-kvm -cpu host,{cpu_flag} \
             -enable-kvm -m 512 -bios executor.fd",
            params.join(" ")
        );
        (
            HvConfig {
                vendor: self.vendor,
                features,
                nested,
            },
            cmdline,
        )
    }
}

/// Xen adapter: `xl.cfg` guest configuration keys.
#[derive(Debug, Clone, Copy)]
pub struct XenAdapter {
    /// Host CPU vendor.
    pub vendor: CpuVendor,
}

impl HvAdapter for XenAdapter {
    fn apply(&self, features: FeatureSet, nested: bool) -> (HvConfig, String) {
        let cmdline = format!(
            "xl create executor.cfg 'nestedhvm={}' 'hap={}' 'cpuid=host,{}'",
            nested as u8,
            (features.contains(CpuFeature::Ept) || features.contains(CpuFeature::NestedPaging))
                as u8,
            if self.vendor == CpuVendor::Intel {
                "vmx"
            } else {
                "svm"
            },
        );
        (
            HvConfig {
                vendor: self.vendor,
                features,
                nested,
            },
            cmdline,
        )
    }
}

/// VirtualBox adapter: `VBoxManage modifyvm` flags (Intel only).
#[derive(Debug, Clone, Copy)]
pub struct VboxAdapter;

impl HvAdapter for VboxAdapter {
    fn apply(&self, features: FeatureSet, nested: bool) -> (HvConfig, String) {
        let cmdline = format!(
            "VBoxManage modifyvm executor --nested-hw-virt {} --hwvirtex on && \
             VBoxManage startvm executor --type headless",
            if nested { "on" } else { "off" },
        );
        (
            HvConfig {
                vendor: CpuVendor::Intel,
                features,
                nested,
            },
            cmdline,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_sanitized() {
        let c = VcpuConfigurator::new(CpuVendor::Intel);
        // All feature bits set: AMD-only features must be dropped.
        let (f, _) = c.generate(u64::MAX);
        assert!(f.contains(CpuFeature::Vmx));
        assert!(!f.contains(CpuFeature::Avic));
        assert!(!f.contains(CpuFeature::NestedPaging));
    }

    #[test]
    fn base_feature_forced_by_high_bits() {
        let c = VcpuConfigurator::new(CpuVendor::Intel);
        let (f, nested) = c.generate(0x7u64 << 32 | 0xfu64 << 36);
        assert!(f.contains(CpuFeature::Vmx));
        assert!(nested);
        let (f0, nested0) = c.generate(0);
        assert!(!f0.contains(CpuFeature::Vmx));
        assert!(!nested0);
    }

    #[test]
    fn kvm_adapter_emits_module_params() {
        let (cfg, cmd) = KvmAdapter {
            vendor: CpuVendor::Intel,
        }
        .apply(FeatureSet::default_for(CpuVendor::Intel), true);
        assert!(cfg.nested);
        assert!(cmd.contains("modprobe kvm-intel"), "{cmd}");
        assert!(cmd.contains("nested=1"), "{cmd}");
        assert!(cmd.contains("ept=1"), "{cmd}");
        assert!(cmd.contains("+vmx"), "{cmd}");
    }

    #[test]
    fn amd_adapter_uses_kvm_amd() {
        let (cfg, cmd) = KvmAdapter {
            vendor: CpuVendor::Amd,
        }
        .apply(FeatureSet::default_for(CpuVendor::Amd), true);
        assert_eq!(cfg.vendor, CpuVendor::Amd);
        assert!(cmd.contains("kvm-amd"), "{cmd}");
        assert!(cmd.contains("npt=1"), "{cmd}");
    }

    #[test]
    fn xen_and_vbox_adapters() {
        let (cfg, cmd) = XenAdapter {
            vendor: CpuVendor::Intel,
        }
        .apply(FeatureSet::default_for(CpuVendor::Intel), true);
        assert!(cmd.contains("nestedhvm=1"), "{cmd}");
        assert_eq!(cfg.vendor, CpuVendor::Intel);

        let (cfg, cmd) = VboxAdapter.apply(FeatureSet::default_for(CpuVendor::Intel), false);
        assert!(cmd.contains("--nested-hw-virt off"), "{cmd}");
        assert!(!cfg.nested);
    }
}
