//! Partitioning of the 2 KiB fuzz input across the VM generator.
//!
//! The agent "partitions and dispatches" the AFL++ input to the three
//! components (paper §3.2): the VM execution harness mutates execution
//! order and parameters, the VM state validator consumes the raw VMCS
//! seed plus mutation directives, and the vCPU configurator consumes the
//! feature bit-array.
//!
//! The partition itself — offsets, lengths, sub-geometry — is owned by
//! [`InputLayout`] in `nf_fuzz::scenario`: the decode side here and the
//! structure-aware mutators there read the same schema, so the two can
//! never drift apart. No other code states a section offset (a layout
//! guard test enforces this).

use nf_fuzz::FuzzInput;

pub use nf_fuzz::{InputLayout, SectionSpan};

/// A parsed view of one fuzz input.
#[derive(Debug, Clone, Copy)]
pub struct InputView<'a> {
    input: &'a FuzzInput,
}

impl<'a> InputView<'a> {
    /// Wraps a fuzz input.
    pub fn new(input: &'a FuzzInput) -> Self {
        InputView { input }
    }

    /// Borrows one layout section.
    fn section(&self, span: SectionSpan) -> &'a [u8] {
        self.input.slice(span.offset, span.len)
    }

    /// Meta byte `i`.
    pub fn meta(&self, i: usize) -> u8 {
        debug_assert!(i < InputLayout::META.len);
        self.input.bytes[InputLayout::META.offset + i]
    }

    /// The init-phase mutation bytes.
    pub fn init_bytes(&self) -> &'a [u8] {
        self.section(InputLayout::INIT)
    }

    /// The runtime-phase selection bytes.
    pub fn runtime_bytes(&self) -> &'a [u8] {
        self.section(InputLayout::RUNTIME)
    }

    /// The raw VMCS seed (also reused as the VMCB seed on AMD).
    pub fn vmcs_seed(&self) -> &'a [u8] {
        self.section(InputLayout::VMCS_SEED)
    }

    /// The mutation directive bytes.
    pub fn mutate_bytes(&self) -> &'a [u8] {
        self.section(InputLayout::MUTATE)
    }

    /// The vCPU configuration word.
    pub fn vcpu_cfg(&self) -> u64 {
        self.input.u64_at(InputLayout::VCPU_CFG.offset)
    }

    /// The MSR-area section bytes.
    pub fn msr_area_bytes(&self) -> &'a [u8] {
        self.section(InputLayout::MSR_AREA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_fuzz::{Scenario, INPUT_LEN};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sections_fit_and_do_not_overlap() {
        let spans = [
            InputLayout::META,
            InputLayout::INIT,
            InputLayout::RUNTIME,
            InputLayout::VMCS_SEED,
            InputLayout::MUTATE,
            InputLayout::VCPU_CFG,
            InputLayout::MSR_AREA,
        ];
        for w in spans.windows(2) {
            assert_eq!(w[0].end(), w[1].offset, "sections must be contiguous");
        }
        assert!(spans[spans.len() - 1].end() <= INPUT_LEN);
    }

    #[test]
    fn view_extracts_sections() {
        let mut input = FuzzInput::zeroed();
        input.bytes[InputLayout::VMCS_SEED.offset] = 0xaa;
        input.bytes[InputLayout::VCPU_CFG.offset] = 0x55;
        let view = InputView::new(&input);
        assert_eq!(view.vmcs_seed()[0], 0xaa);
        assert_eq!(view.vcpu_cfg(), 0x55);
        assert_eq!(view.vmcs_seed().len(), InputLayout::VMCS_SEED.len);
        assert_eq!(view.runtime_bytes().len(), InputLayout::RUNTIME.len);
    }

    #[test]
    fn view_and_scenario_decode_the_same_partition() {
        // The decode side (harness/validator/configurator dispatch) and
        // the mutation side (Scenario IR) must read identical bytes for
        // every section — the whole point of the shared schema.
        let mut rng = SmallRng::seed_from_u64(40);
        let input = FuzzInput::random(&mut rng);
        let view = InputView::new(&input);
        let s = Scenario::decode(&input);
        assert_eq!(view.vmcs_seed(), &s.vmcs_seed[..]);
        assert_eq!(view.mutate_bytes(), &s.directives[..]);
        assert_eq!(view.vcpu_cfg(), s.vcpu_cfg);
        assert_eq!(
            view.runtime_bytes(),
            &s.encode().bytes[InputLayout::RUNTIME.range()]
        );
        for (i, &b) in s.meta.iter().enumerate() {
            assert_eq!(view.meta(i), b);
        }
    }
}
