//! Partitioning of the 2 KiB fuzz input across the VM generator.
//!
//! The agent "partitions and dispatches" the AFL++ input to the three
//! components (paper §3.2): the VM execution harness mutates execution
//! order and parameters, the VM state validator consumes the raw VMCS
//! seed plus mutation directives, and the vCPU configurator consumes the
//! feature bit-array.

use nf_fuzz::FuzzInput;

/// Byte offsets of the input sections.
pub mod sections {
    /// Meta bytes: phase gates, iteration limits.
    pub const META: usize = 0;
    /// Meta length.
    pub const META_LEN: usize = 8;
    /// Init-phase template mutations (order/argument/repetition).
    pub const INIT: usize = 8;
    /// Init section length.
    pub const INIT_LEN: usize = 64;
    /// Runtime-phase instruction selection and arguments.
    pub const RUNTIME: usize = 72;
    /// Runtime section length (4 bytes per step).
    pub const RUNTIME_LEN: usize = 320;
    /// Raw VMCS seed (1000 bytes = the full 8000-bit layout).
    pub const VMCS_SEED: usize = 392;
    /// VMCS seed length.
    pub const VMCS_SEED_LEN: usize = 1000;
    /// Post-rounding mutation directives (field/bit selection).
    pub const MUTATE: usize = 1392;
    /// Mutation directive length.
    pub const MUTATE_LEN: usize = 28;
    /// vCPU configuration bit-array.
    pub const VCPU_CFG: usize = 1420;
    /// vCPU configuration length.
    pub const VCPU_CFG_LEN: usize = 8;
    /// MSR-load-area entries (8 × 12 bytes).
    pub const MSR_AREA: usize = 1428;
    /// MSR-area section length.
    pub const MSR_AREA_LEN: usize = 96;
}

/// A parsed view of one fuzz input.
#[derive(Debug, Clone, Copy)]
pub struct InputView<'a> {
    input: &'a FuzzInput,
}

impl<'a> InputView<'a> {
    /// Wraps a fuzz input.
    pub fn new(input: &'a FuzzInput) -> Self {
        InputView { input }
    }

    /// Meta byte `i`.
    pub fn meta(&self, i: usize) -> u8 {
        debug_assert!(i < sections::META_LEN);
        self.input.bytes[sections::META + i]
    }

    /// The init-phase mutation bytes.
    pub fn init_bytes(&self) -> &'a [u8] {
        self.input.slice(sections::INIT, sections::INIT_LEN)
    }

    /// The runtime-phase selection bytes.
    pub fn runtime_bytes(&self) -> &'a [u8] {
        self.input.slice(sections::RUNTIME, sections::RUNTIME_LEN)
    }

    /// The raw VMCS seed (also reused as the VMCB seed on AMD).
    pub fn vmcs_seed(&self) -> &'a [u8] {
        self.input
            .slice(sections::VMCS_SEED, sections::VMCS_SEED_LEN)
    }

    /// The mutation directive bytes.
    pub fn mutate_bytes(&self) -> &'a [u8] {
        self.input.slice(sections::MUTATE, sections::MUTATE_LEN)
    }

    /// The vCPU configuration word.
    pub fn vcpu_cfg(&self) -> u64 {
        self.input.u64_at(sections::VCPU_CFG)
    }

    /// The MSR-area section bytes.
    pub fn msr_area_bytes(&self) -> &'a [u8] {
        self.input.slice(sections::MSR_AREA, sections::MSR_AREA_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_fuzz::INPUT_LEN;

    #[test]
    fn sections_fit_and_do_not_overlap() {
        use sections::*;
        let spans = [
            (META, META_LEN),
            (INIT, INIT_LEN),
            (RUNTIME, RUNTIME_LEN),
            (VMCS_SEED, VMCS_SEED_LEN),
            (MUTATE, MUTATE_LEN),
            (VCPU_CFG, VCPU_CFG_LEN),
            (MSR_AREA, MSR_AREA_LEN),
        ];
        for w in spans.windows(2) {
            assert_eq!(w[0].0 + w[0].1, w[1].0, "sections must be contiguous");
        }
        let (last, len) = spans[spans.len() - 1];
        assert!(last + len <= INPUT_LEN);
    }

    #[test]
    fn view_extracts_sections() {
        let mut input = FuzzInput::zeroed();
        input.bytes[sections::VMCS_SEED] = 0xaa;
        input.bytes[sections::VCPU_CFG] = 0x55;
        let view = InputView::new(&input);
        assert_eq!(view.vmcs_seed()[0], 0xaa);
        assert_eq!(view.vcpu_cfg(), 0x55);
        assert_eq!(view.vmcs_seed().len(), sections::VMCS_SEED_LEN);
        assert_eq!(view.runtime_bytes().len(), sections::RUNTIME_LEN);
    }
}
