//! Campaign runner: virtual-time fuzzing runs with hourly sampling.
//!
//! The paper runs 48-hour (Table 2) and 24-hour (Tables 3/4) campaigns,
//! reporting medians of five runs. A campaign here advances a virtual
//! clock at a fixed executions-per-hour rate, samples coverage each
//! virtual hour (Figures 3/4), and records vulnerability discoveries.

use nf_fuzz::{FuzzInput, Fuzzer, Mode};
use nf_hv::{HvConfig, L0Hypervisor};
use nf_x86::CpuVendor;

use crate::agent::{Agent, BugFind, ComponentMask};
use crate::engine::EngineMode;

/// Executions one virtual hour stands for. The paper's harness reaches
/// hundreds of executions per second on bare metal; the simulation
/// compresses that to a benchmark-friendly rate with the same shape.
pub const EXECS_PER_HOUR: u32 = 250;

/// Configuration of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Vendor of the modeled host CPU.
    pub vendor: CpuVendor,
    /// Virtual duration in hours (48 for Table 2, 24 for Tables 3/4).
    pub hours: u32,
    /// Executions per virtual hour.
    pub execs_per_hour: u32,
    /// RNG seed (one per run; the paper uses five runs).
    pub seed: u64,
    /// Feedback mode (Table 5 compares Guided vs Unguided).
    pub mode: Mode,
    /// Component toggles (Table 3 / Figure 4).
    pub mask: ComponentMask,
    /// Iteration hot-path engine (`Snapshot` is the product default;
    /// `Rebuild` keeps the original full-reboot semantics for A/B
    /// measurement — results are bit-identical either way).
    pub engine: EngineMode,
}

impl CampaignConfig {
    /// The standard NecoFuzz configuration for `vendor` and `seed`.
    ///
    /// Coverage guidance is off by default: the paper found breadth-first
    /// exploration slightly ahead of guided mode on this target (§5.6)
    /// and ships NecoFuzz accordingly.
    pub fn necofuzz(vendor: CpuVendor, hours: u32, seed: u64) -> Self {
        CampaignConfig {
            vendor,
            hours,
            execs_per_hour: EXECS_PER_HOUR,
            seed,
            mode: Mode::Unguided,
            mask: ComponentMask::ALL,
            engine: EngineMode::Snapshot,
        }
    }
}

/// One hourly coverage sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourSample {
    /// Virtual hour (1-based; hour 0 is the pre-run state).
    pub hour: u32,
    /// Coverage fraction of the vendor-matching nested file.
    pub coverage: f64,
}

/// Result of one campaign run.
///
/// `PartialEq` compares every field; the orchestrator's equivalence
/// tests rely on it to show parallel execution is bit-identical to
/// serial.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Hourly coverage samples (index 0 = after the first hour).
    pub hourly: Vec<HourSample>,
    /// Final coverage fraction.
    pub final_coverage: f64,
    /// Cumulative covered lines (for the Table 2 set algebra).
    pub lines: nf_coverage::LineSet,
    /// The coverage map geometry of the target.
    pub map: nf_coverage::CovMap,
    /// File the fraction was computed over.
    pub file: nf_coverage::FileId,
    /// Vulnerability discoveries, in find order.
    pub finds: Vec<BugFind>,
    /// Total executions.
    pub execs: u64,
    /// Watchdog restarts.
    pub restarts: u64,
}

/// Runs one campaign of NecoFuzz against the hypervisor `factory`.
pub fn run_campaign(
    factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
    cfg: &CampaignConfig,
) -> CampaignResult {
    let mut agent = Agent::with_engine(factory, cfg.vendor, cfg.mask, cfg.engine);
    let mut fuzzer = Fuzzer::new(cfg.seed, cfg.mode);
    let mut hourly = Vec::with_capacity(cfg.hours as usize);

    for hour in 1..=cfg.hours {
        for _ in 0..cfg.execs_per_hour {
            let input: FuzzInput = fuzzer.next_input();
            let result = agent.run_iteration(&input);
            fuzzer.report(&input, &result.bitmap, result.feedback);
        }
        hourly.push(HourSample {
            hour,
            coverage: agent.coverage_fraction(),
        });
    }

    let final_coverage = agent.coverage_fraction();
    let map = agent.hv().coverage_map().clone();
    let file = match cfg.vendor {
        CpuVendor::Intel => agent.hv().intel_file(),
        CpuVendor::Amd => agent
            .hv()
            .amd_file()
            .unwrap_or_else(|| agent.hv().intel_file()),
    };
    CampaignResult {
        hourly,
        final_coverage,
        lines: agent.cumulative.clone(),
        map,
        file,
        finds: agent.finds.clone(),
        execs: agent.execs(),
        restarts: agent.restarts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_hv::Vkvm;

    fn kvm_factory() -> Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>> {
        Box::new(|cfg| Box::new(Vkvm::new(cfg)))
    }

    #[test]
    fn short_campaign_produces_samples() {
        let cfg = CampaignConfig {
            hours: 3,
            execs_per_hour: 40,
            ..CampaignConfig::necofuzz(CpuVendor::Intel, 3, 0)
        };
        let result = run_campaign(kvm_factory(), &cfg);
        assert_eq!(result.hourly.len(), 3);
        assert_eq!(result.execs, 120);
        assert!(result.final_coverage > 0.3, "got {}", result.final_coverage);
        // Hourly samples are monotone.
        for w in result.hourly.windows(2) {
            assert!(w[1].coverage >= w[0].coverage);
        }
    }

    #[test]
    fn campaigns_are_seed_deterministic() {
        let cfg = CampaignConfig {
            hours: 2,
            execs_per_hour: 30,
            ..CampaignConfig::necofuzz(CpuVendor::Intel, 2, 9)
        };
        let a = run_campaign(kvm_factory(), &cfg);
        let b = run_campaign(kvm_factory(), &cfg);
        assert_eq!(a.final_coverage, b.final_coverage);
        assert_eq!(a.execs, b.execs);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let mk = |seed| CampaignConfig {
            hours: 2,
            execs_per_hour: 30,
            ..CampaignConfig::necofuzz(CpuVendor::Intel, 2, seed)
        };
        let a = run_campaign(kvm_factory(), &mk(1));
        let b = run_campaign(kvm_factory(), &mk(2));
        // Coverage may coincide, but the covered line sets rarely do.
        assert!(
            a.lines != b.lines || (a.final_coverage - b.final_coverage).abs() > 0.0,
            "two seeds should not be bit-identical"
        );
    }
}
