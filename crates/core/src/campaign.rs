//! Campaign runner: virtual-time fuzzing runs with hourly sampling and
//! cross-worker corpus sync.
//!
//! The paper runs 48-hour (Table 2) and 24-hour (Tables 3/4) campaigns,
//! reporting medians of five runs. A campaign here advances a virtual
//! clock at a fixed executions-per-hour rate, samples coverage each
//! virtual hour (Figures 3/4), and records vulnerability discoveries.
//!
//! A [`Campaign`] is resumable: `run_hours(n)` advances the clock in
//! steps, so a *sync group* (AFL++-style main/secondary fleets) can
//! interleave members at epoch boundaries and exchange
//! [`CorpusDelta`]s through a [`SharedCorpus`] —
//! [`run_campaign_group`] is that loop, and the orchestrator's
//! `SyncGroup` seam feeds it whole grid cells.

use nf_fuzz::{
    CorpusDelta, DeltaBus, FuzzInput, Fuzzer, GossipNode, Mode, MutationStats, MutationStrategy,
    SeqDelta, SharedCorpus, SyncMode, SyncStats, SyncTopology, MAP_SIZE,
};
use nf_hv::{FaultPlan, HvConfig, L0Hypervisor, DEFAULT_WATCHDOG_FUEL};
use nf_x86::CpuVendor;

use crate::agent::{Agent, BugFind, ComponentMask};
use crate::differential::{DifferentialRunner, DivergenceStats, OracleMode};
use crate::engine::{
    EngineMode, EngineStats, PrefixStoreMode, DEFAULT_CACHE_CAPACITY, DEFAULT_PREFIX_BUDGET,
};

/// Executions one virtual hour stands for. The paper's harness reaches
/// hundreds of executions per second on bare metal; the simulation
/// compresses that to a benchmark-friendly rate with the same shape.
pub const EXECS_PER_HOUR: u32 = 250;

/// Configuration of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Vendor of the modeled host CPU.
    pub vendor: CpuVendor,
    /// Virtual duration in hours (48 for Table 2, 24 for Tables 3/4).
    pub hours: u32,
    /// Executions per virtual hour.
    pub execs_per_hour: u32,
    /// RNG seed (one per run; the paper uses five runs).
    pub seed: u64,
    /// Feedback mode (Table 5 compares Guided vs Unguided).
    pub mode: Mode,
    /// Component toggles (Table 3 / Figure 4).
    pub mask: ComponentMask,
    /// Iteration hot-path engine (`Snapshot` is the product default;
    /// `Rebuild` keeps the original full-reboot semantics for A/B
    /// measurement — results are bit-identical either way).
    pub engine: EngineMode,
    /// Prefix-cached execution (`--prefix-cache`): mid-scenario
    /// snapshots are captured at hot instruction boundaries and each
    /// exec resumes from the deepest cached ancestor of its scenario
    /// prefix, executing only the suffix. Off by default; results are
    /// bit-identical with the cache on or off — full replay is the A/B
    /// oracle. Requires [`EngineMode::Snapshot`].
    pub prefix_cache: bool,
    /// Booted-image cache capacity of the execution engine
    /// (`--cache-capacity`): how many (config → booted hypervisor +
    /// boot snapshot) images the engine parks across config flips.
    pub cache_capacity: usize,
    /// Byte budget of the prefix trie (`--prefix-budget`): the LRU
    /// evicts stalest nodes past it. Ignored unless `prefix_cache` is
    /// on. Results are bit-identical at any budget — the budget only
    /// moves work between restore and re-execution.
    pub prefix_budget: usize,
    /// How the prefix trie stores captured nodes: the content-addressed
    /// CoW store (default) or self-contained deep copies (the A/B
    /// baseline `prefix_speedup` measures against). Bit-identical
    /// either way.
    pub prefix_store: PrefixStoreMode,
    /// Corpus-sync epoch length in virtual hours. `0` (the default)
    /// never syncs; `n` exchanges [`CorpusDelta`]s with the sync group
    /// every `n` virtual hours. A lone campaign ignores the setting.
    /// In [`SyncMode::Async`] the value only switches syncing on
    /// (`> 0`) or off (`0`) — publication is novelty-driven, not
    /// clocked.
    pub sync_interval: u32,
    /// How the sync group exchanges knowledge: the hourly lockstep
    /// epoch barrier (default; the A/B determinism oracle) or
    /// watermark-based asynchronous gossip (`--sync-mode async`).
    pub sync_mode: SyncMode,
    /// Gossip graph of an async group (`--sync-topology`); lockstep
    /// groups ignore the setting.
    pub sync_topology: SyncTopology,
    /// How guided mode turns queue parents into children: the classic
    /// byte-blind havoc stack (default, bit-identical to the original
    /// engine) or the structure-aware scenario operators (`--mutator
    /// structured`). Unguided campaigns ignore the setting — random
    /// generation never consults a parent.
    pub strategy: MutationStrategy,
    /// Anomaly oracle: sanitizers only (default), or sanitizers plus
    /// the cross-backend differential oracle (`--oracle differential`).
    pub oracle: OracleMode,
    /// Backend set of the differential oracle (names as understood by
    /// [`crate::differential::backend_factory`]); ignored in
    /// [`OracleMode::Sanitizer`] campaigns. Every generated input is
    /// additionally replayed on each of these and the observations
    /// diffed pairwise — the primary agent's own execution stream is
    /// untouched, so exploration is bit-identical with the oracle on
    /// or off.
    pub diff_backends: Vec<String>,
    /// Deterministic fault plan (`--fault-plan`): injected hangs,
    /// restore/capture failures, and host deaths, scheduled as a pure
    /// function of (plan, exec index, input content). `None` (the
    /// default) installs nothing; a zero-rate plan is bit-identical to
    /// `None`.
    pub fault_plan: Option<FaultPlan>,
    /// Per-execution instruction-fuel budget of the exec watchdog
    /// (`--watchdog-fuel`); only metered when a fault plan is
    /// installed.
    pub watchdog_fuel: u64,
}

impl CampaignConfig {
    /// The standard NecoFuzz configuration for `vendor` and `seed`.
    ///
    /// Coverage guidance is off by default: the paper found breadth-first
    /// exploration slightly ahead of guided mode on this target (§5.6)
    /// and ships NecoFuzz accordingly.
    pub fn necofuzz(vendor: CpuVendor, hours: u32, seed: u64) -> Self {
        CampaignConfig {
            vendor,
            hours,
            execs_per_hour: EXECS_PER_HOUR,
            seed,
            mode: Mode::Unguided,
            mask: ComponentMask::ALL,
            engine: EngineMode::Snapshot,
            prefix_cache: false,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            prefix_budget: DEFAULT_PREFIX_BUDGET,
            prefix_store: PrefixStoreMode::Cow,
            sync_interval: 0,
            sync_mode: SyncMode::Lockstep,
            sync_topology: SyncTopology::Tree,
            strategy: MutationStrategy::Havoc,
            oracle: OracleMode::Sanitizer,
            diff_backends: Vec::new(),
            fault_plan: None,
            watchdog_fuel: DEFAULT_WATCHDOG_FUEL,
        }
    }

    /// Sets the executions-per-virtual-hour rate.
    pub fn with_execs_per_hour(mut self, execs_per_hour: u32) -> Self {
        self.execs_per_hour = execs_per_hour;
        self
    }

    /// Sets the feedback mode.
    pub fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the component-ablation mask.
    pub fn with_mask(mut self, mask: ComponentMask) -> Self {
        self.mask = mask;
        self
    }

    /// Sets the iteration hot-path engine.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Enables (or disables) prefix-cached execution.
    pub fn with_prefix_cache(mut self, prefix_cache: bool) -> Self {
        self.prefix_cache = prefix_cache;
        self
    }

    /// Sets the booted-image cache capacity.
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Sets the prefix trie's byte budget.
    pub fn with_prefix_budget(mut self, prefix_budget: usize) -> Self {
        self.prefix_budget = prefix_budget;
        self
    }

    /// Selects the prefix trie's snapshot store.
    pub fn with_prefix_store(mut self, prefix_store: PrefixStoreMode) -> Self {
        self.prefix_store = prefix_store;
        self
    }

    /// Sets the corpus-sync epoch length (hours; `0` = never).
    pub fn with_sync_interval(mut self, sync_interval: u32) -> Self {
        self.sync_interval = sync_interval;
        self
    }

    /// Sets the sync mode (lockstep epochs or async gossip).
    pub fn with_sync_mode(mut self, sync_mode: SyncMode) -> Self {
        self.sync_mode = sync_mode;
        self
    }

    /// Sets the async gossip topology.
    pub fn with_sync_topology(mut self, sync_topology: SyncTopology) -> Self {
        self.sync_topology = sync_topology;
        self
    }

    /// Sets the guided-mode mutation strategy.
    pub fn with_strategy(mut self, strategy: MutationStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the anomaly oracle mode.
    pub fn with_oracle(mut self, oracle: OracleMode) -> Self {
        self.oracle = oracle;
        self
    }

    /// Sets the differential-oracle backend set.
    pub fn with_diff_backends(mut self, backends: &[&str]) -> Self {
        self.diff_backends = backends.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Installs a deterministic fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the exec watchdog's per-execution fuel budget.
    pub fn with_watchdog_fuel(mut self, fuel: u64) -> Self {
        self.watchdog_fuel = fuel;
        self
    }
}

/// One hourly coverage sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourSample {
    /// Virtual hour (1-based; hour 0 is the pre-run state).
    pub hour: u32,
    /// Coverage fraction of the vendor-matching nested file.
    pub coverage: f64,
}

/// Injected faults that actually fired during a campaign. Semantic —
/// the schedule is a pure function of (plan, exec stream) — so equal
/// configurations must produce equal counters, and the determinism
/// suites compare them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Hung execs the watchdog classified (content-indexed hang faults
    /// plus genuine fuel exhaustion).
    pub hangs: u64,
    /// Silent host deaths injected mid-exec.
    pub deaths: u64,
}

/// Trailing zero-coverage-delta hours before the plateau alarm trips.
pub const PLATEAU_ALARM_HOURS: u32 = 6;

/// End-of-campaign health alarms, derived from the hourly samples (so
/// they are as deterministic as the samples themselves).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthAlarms {
    /// Coverage made no progress for the trailing
    /// [`PLATEAU_ALARM_HOURS`] virtual hours or more.
    pub coverage_plateau: bool,
    /// Length of the trailing zero-delta streak, in virtual hours.
    pub plateau_hours: u32,
    /// Corpus yield collapsed: the last quarter of the run queued less
    /// than a quarter of what the first quarter did (only judged once
    /// the first quarter queued enough to be meaningful).
    pub yield_degraded: bool,
}

/// Derives the end-of-campaign alarms from the hourly coverage samples
/// and the per-hour corpus-size marks.
fn compute_alarms(hourly: &[HourSample], corpus_marks: &[u64]) -> HealthAlarms {
    let mut plateau_hours = 0u32;
    for w in hourly.windows(2).rev() {
        if w[1].coverage == w[0].coverage {
            plateau_hours += 1;
        } else {
            break;
        }
    }
    let mut yield_degraded = false;
    let n = corpus_marks.len();
    if n >= 8 {
        let quarter = n / 4;
        let first = corpus_marks[quarter - 1];
        let last = corpus_marks[n - 1] - corpus_marks[n - 1 - quarter];
        yield_degraded = first >= 8 && last * 4 < first;
    }
    HealthAlarms {
        coverage_plateau: plateau_hours >= PLATEAU_ALARM_HOURS,
        plateau_hours,
        yield_degraded,
    }
}

/// Result of one campaign run.
///
/// `PartialEq` compares every *semantic* field; the orchestrator's
/// equivalence tests rely on it to show parallel execution is
/// bit-identical to serial, and the prefix-cache equivalence suite
/// relies on it to show cached execution matches full replay. The
/// [`EngineStats`] counters are excluded: they describe *how* the
/// engine serviced the run (cache hits, snapshots restored), which
/// legitimately differs between equivalent executions.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Hourly coverage samples (index 0 = after the first hour).
    pub hourly: Vec<HourSample>,
    /// Final coverage fraction.
    pub final_coverage: f64,
    /// Cumulative covered lines (for the Table 2 set algebra).
    pub lines: nf_coverage::LineSet,
    /// The coverage map geometry of the target.
    pub map: nf_coverage::CovMap,
    /// File the fraction was computed over.
    pub file: nf_coverage::FileId,
    /// Vulnerability discoveries, in find order.
    pub finds: Vec<BugFind>,
    /// Total executions.
    pub execs: u64,
    /// Watchdog restarts.
    pub restarts: u64,
    /// The final corpus (queue + virgin bitmap + provenance) — for
    /// persistence (`--corpus-dir`) and offline minimization.
    pub corpus: nf_fuzz::Corpus,
    /// Corpus entries adopted from sync-group siblings.
    pub adopted: u64,
    /// Mutation-side statistics: per-operator scheduling stats
    /// (structured strategy) and the havoc arm counters — the source
    /// of `mutator_yield`'s per-operator table and its smoke gate.
    pub mutation: MutationStats,
    /// Differential-oracle counters (all zero in sanitizer-only
    /// campaigns). Divergence findings themselves are appended to
    /// `finds` after the sanitizer findings, in discovery order.
    pub divergence: DivergenceStats,
    /// Executions spent replaying inputs on the differential backend
    /// set (on top of `execs`) — the oracle's overhead denominator in
    /// `BENCH_diff.json`.
    pub diff_execs: u64,
    /// Execution-engine counters (boot-image cache, snapshot restores,
    /// prefix-trie hits/evictions). Diagnostic only: excluded from
    /// `PartialEq`, since equivalent campaigns may service the same
    /// execution stream through different cache paths.
    pub engine_stats: EngineStats,
    /// Sync-cost counters (deltas published/applied, segments merged,
    /// words scanned, adoptions). Diagnostic only: excluded from
    /// `PartialEq` like `engine_stats` — they describe how knowledge
    /// moved, not what was learned.
    pub sync: SyncStats,
    /// Injected faults that fired. Semantic (schedule-determined) and
    /// therefore *included* in `PartialEq`: equal configurations must
    /// observe the identical fault sequence.
    pub faults: FaultCounters,
    /// End-of-campaign health alarms (coverage plateau, yield
    /// degradation), derived from the hourly samples; included in
    /// `PartialEq`.
    pub alarms: HealthAlarms,
}

impl PartialEq for CampaignResult {
    fn eq(&self, other: &Self) -> bool {
        self.hourly == other.hourly
            && self.final_coverage == other.final_coverage
            && self.lines == other.lines
            && self.map == other.map
            && self.file == other.file
            && self.finds == other.finds
            && self.execs == other.execs
            && self.restarts == other.restarts
            && self.corpus == other.corpus
            && self.adopted == other.adopted
            && self.mutation == other.mutation
            && self.divergence == other.divergence
            && self.diff_execs == other.diff_execs
            && self.faults == other.faults
            && self.alarms == other.alarms
    }
}

/// A resumable campaign: agent + fuzzer + the virtual clock.
///
/// `run_campaign` drives one to completion in a single call; sync
/// groups advance members epoch by epoch and exchange corpus deltas in
/// between.
pub struct Campaign {
    agent: Agent,
    fuzzer: Fuzzer,
    cfg: CampaignConfig,
    hourly: Vec<HourSample>,
    hour: u32,
    /// Executions already run inside the current (incomplete) virtual
    /// hour — the async runner advances campaigns in sub-hour steps.
    hour_execs: u32,
    /// Corpus size at each completed hour (yield-degradation input).
    corpus_marks: Vec<u64>,
    adopted: u64,
    /// Sync-cost counters for this worker (diagnostic).
    sync_stats: SyncStats,
    /// The reusable child buffer of the zero-allocation exec loop:
    /// every iteration's input is generated into this scratch in place
    /// (`Fuzzer::next_input_into`) instead of allocating per exec.
    input: FuzzInput,
    /// The differential oracle's replay engine (`--oracle
    /// differential` only). It owns its own agents — including one for
    /// the primary backend's name — so the primary agent's stream, and
    /// with it exploration, stays bit-identical either way.
    diff: Option<DifferentialRunner>,
    /// Periodic checkpointing: `(directory, interval-in-hours)`.
    /// Runtime state, not configuration — set via
    /// [`Campaign::set_checkpoint`], never part of [`CampaignConfig`]
    /// (a campaign's result is a pure function of its config; where it
    /// checkpoints is not allowed to influence that).
    checkpoint: Option<(std::path::PathBuf, u32)>,
}

impl Campaign {
    /// Creates a campaign as sync-group worker 0.
    pub fn new(
        factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
        cfg: &CampaignConfig,
    ) -> Self {
        Campaign::with_worker(factory, cfg, 0)
    }

    /// Creates a campaign with an explicit sync-group worker id (the
    /// deterministic merge-order key; plan order in a grid).
    pub fn with_worker(
        factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
        cfg: &CampaignConfig,
        worker: u32,
    ) -> Self {
        let agent = Campaign::make_agent(factory, cfg);
        let mut fuzzer = Fuzzer::with_strategy(cfg.seed, cfg.mode, cfg.strategy);
        fuzzer.set_worker(worker);
        Campaign {
            agent,
            fuzzer,
            diff: Campaign::make_diff(cfg),
            cfg: cfg.clone(),
            hourly: Vec::with_capacity(cfg.hours as usize),
            hour: 0,
            hour_execs: 0,
            corpus_marks: Vec::with_capacity(cfg.hours as usize),
            adopted: 0,
            sync_stats: SyncStats::default(),
            input: FuzzInput::zeroed(),
            checkpoint: None,
        }
    }

    /// Creates a campaign resuming from a persisted corpus.
    pub fn with_corpus(
        factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
        cfg: &CampaignConfig,
        corpus: nf_fuzz::Corpus,
    ) -> Self {
        let agent = Campaign::make_agent(factory, cfg);
        let fuzzer = Fuzzer::with_corpus_strategy(cfg.seed, cfg.mode, cfg.strategy, corpus);
        Campaign {
            agent,
            fuzzer,
            diff: Campaign::make_diff(cfg),
            cfg: cfg.clone(),
            hourly: Vec::with_capacity(cfg.hours as usize),
            hour: 0,
            hour_execs: 0,
            corpus_marks: Vec::with_capacity(cfg.hours as usize),
            adopted: 0,
            sync_stats: SyncStats::default(),
            input: FuzzInput::zeroed(),
            checkpoint: None,
        }
    }

    /// Builds the campaign's agent, applying every engine/fault knob
    /// the config carries — shared by all constructors so fresh and
    /// resumed campaigns run identically-configured agents.
    fn make_agent(
        factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
        cfg: &CampaignConfig,
    ) -> Agent {
        let mut agent = Agent::with_engine(factory, cfg.vendor, cfg.mask, cfg.engine)
            .with_prefix_cache(cfg.prefix_cache)
            .with_cache_capacity(cfg.cache_capacity)
            .with_prefix_budget(cfg.prefix_budget)
            .with_prefix_store(cfg.prefix_store);
        if let Some(plan) = cfg.fault_plan {
            agent = agent
                .with_fault_plan(plan)
                .with_watchdog_fuel(cfg.watchdog_fuel);
        }
        agent
    }

    fn make_diff(cfg: &CampaignConfig) -> Option<DifferentialRunner> {
        (cfg.oracle == OracleMode::Differential).then(|| {
            DifferentialRunner::new(&cfg.diff_backends, cfg.vendor, cfg.mask, cfg.engine)
                .with_prefix_cache(cfg.prefix_cache)
                .with_cache_capacity(cfg.cache_capacity)
                .with_prefix_budget(cfg.prefix_budget)
                .with_prefix_store(cfg.prefix_store)
        })
    }

    /// Virtual hours completed so far.
    pub fn hours_done(&self) -> u32 {
        self.hour
    }

    /// The configured virtual-hour budget.
    pub fn hours_total(&self) -> u32 {
        self.cfg.hours
    }

    /// Corpus entries adopted (and replayed) from sync-group siblings.
    pub fn adopted(&self) -> u64 {
        self.adopted
    }

    /// `true` once the configured budget is exhausted.
    pub fn is_complete(&self) -> bool {
        self.hour >= self.cfg.hours
    }

    /// Executions performed so far.
    pub fn execs(&self) -> u64 {
        self.agent.execs()
    }

    /// Cumulative covered lines so far.
    pub fn lines(&self) -> &nf_coverage::LineSet {
        &self.agent.cumulative
    }

    /// The target's coverage geometry: the map and the vendor-matching
    /// nested file (for cross-member union accounting in benches).
    pub fn coverage_geometry(&self) -> (nf_coverage::CovMap, nf_coverage::FileId) {
        let hv = self.agent.hv();
        let file = match self.cfg.vendor {
            CpuVendor::Intel => hv.intel_file(),
            CpuVendor::Amd => hv.amd_file().unwrap_or_else(|| hv.intel_file()),
        };
        (hv.coverage_map().clone(), file)
    }

    /// Current coverage fraction of the vendor-matching nested file.
    pub fn coverage_fraction(&self) -> f64 {
        self.agent.coverage_fraction()
    }

    /// Advances the virtual clock by up to `n` hours (clamped to the
    /// configured budget), sampling coverage at each hour boundary.
    pub fn run_hours(&mut self, n: u32) {
        let until = (self.hour + n).min(self.cfg.hours);
        while self.hour < until {
            if self.cfg.execs_per_hour == 0 {
                // An hour that carries no executions still ticks the
                // clock and samples.
                self.sample_hour();
                continue;
            }
            self.run_execs(self.cfg.execs_per_hour - self.hour_execs);
        }
    }

    /// Advances the campaign by up to `n` executions (clamped to the
    /// configured budget), sampling coverage whenever the exec count
    /// crosses an hour boundary. The exec sequence is identical to
    /// [`Campaign::run_hours`]'s — the async sync loop uses sub-hour
    /// steps to consume gossip at iteration boundaries, without
    /// changing what any single worker executes.
    pub fn run_execs(&mut self, n: u32) {
        for _ in 0..n {
            if self.hour >= self.cfg.hours {
                return;
            }
            // Zero-allocation exec loop: the child is generated into
            // the reusable scratch, the iteration result borrows the
            // engine's scratch buffers, and the fuzzer observes them
            // in place.
            self.fuzzer.next_input_into(&mut self.input);
            let result = self.agent.run_iteration(&self.input);
            self.fuzzer
                .report_observed(&self.input, result.bitmap, result.lines, result.feedback);
            if let Some(diff) = &mut self.diff {
                diff.observe_exec(&self.input, self.agent.execs());
            }
            self.hour_execs += 1;
            if self.hour_execs >= self.cfg.execs_per_hour {
                self.hour_execs = 0;
                self.sample_hour();
            }
        }
    }

    /// Ticks the virtual clock one hour: samples coverage, marks the
    /// corpus size (the yield-degradation series), and writes a
    /// checkpoint when one is due.
    fn sample_hour(&mut self) {
        self.hour += 1;
        self.hourly.push(HourSample {
            hour: self.hour,
            coverage: self.agent.coverage_fraction(),
        });
        self.corpus_marks.push(self.fuzzer.corpus().len() as u64);
        self.maybe_checkpoint();
    }

    /// Arms periodic checkpointing: every `interval` virtual hours the
    /// campaign's full resumable state is written to `dir` (atomically:
    /// a sibling temp directory is renamed into place). Checkpointing
    /// is runtime plumbing, not campaign identity — it never enters
    /// [`CampaignConfig`] and has no effect on the exec sequence.
    pub fn set_checkpoint(&mut self, dir: impl Into<std::path::PathBuf>, interval: u32) {
        self.checkpoint = Some((dir.into(), interval.max(1)));
    }

    /// Writes a checkpoint if one is armed and due this hour. Write
    /// failures are reported on stderr and disarm further attempts
    /// rather than aborting the campaign.
    fn maybe_checkpoint(&mut self) {
        let Some((dir, interval)) = self.checkpoint.clone() else {
            return;
        };
        if !self.hour.is_multiple_of(interval) && self.hour < self.cfg.hours {
            return;
        }
        if let Err(error) = crate::checkpoint::write_checkpoint(self, &dir) {
            eprintln!(
                "necofuzz: checkpoint to {} failed at hour {}: {error}; disabling checkpoints",
                dir.display(),
                self.hour
            );
            self.checkpoint = None;
        }
    }

    /// The live corpus (queue + virgin bitmap + provenance) — the
    /// checkpoint writer persists it via [`nf_fuzz::Corpus::save_to`].
    pub fn corpus(&self) -> &nf_fuzz::Corpus {
        self.fuzzer.corpus()
    }

    /// Gathers everything a resume needs into a
    /// [`crate::checkpoint::CampaignCheckpoint`]. Called at hour
    /// boundaries only, where no generated input is pending a report.
    pub(crate) fn checkpoint_snapshot(&self) -> crate::checkpoint::CampaignCheckpoint {
        let (fault_hangs, fault_deaths) = self.agent.faults_fired();
        crate::checkpoint::CampaignCheckpoint {
            seed: self.cfg.seed,
            hour: self.hour,
            hour_execs: self.hour_execs,
            adopted: self.adopted,
            hourly: self.hourly.clone(),
            corpus_marks: self.corpus_marks.clone(),
            fuzzer: self.fuzzer.checkpoint_state(),
            agent_execs: self.agent.execs(),
            agent_restarts: self.agent.restarts(),
            cumulative: self.agent.cumulative.as_words().to_vec(),
            corrections: self
                .agent
                .validator()
                .corrections
                .iter()
                .map(|c| (c.rule.to_string(), c.detail.clone()))
                .collect(),
            finds: self
                .agent
                .triage()
                .finds()
                .iter()
                .map(crate::checkpoint::FindRecord::of)
                .collect(),
            fault_hangs,
            fault_deaths,
        }
    }

    /// Reconstructs a campaign from a checkpoint directory and
    /// continues it under `cfg`. The resumed campaign's remaining exec
    /// stream — and with it the final [`CampaignResult`] — is
    /// *identical* to what the interrupted run would have produced:
    /// every piece of state the stream depends on is restored exactly.
    ///
    /// `cfg` must be the interrupted campaign's configuration (the CLI
    /// re-derives it from the same flags); a mismatched seed is
    /// rejected. Differential-oracle campaigns are not resumable — the
    /// oracle's replay agents hold their own unpersisted state.
    pub fn resume_from_checkpoint(
        factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
        cfg: &CampaignConfig,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Campaign> {
        if cfg.oracle == OracleMode::Differential {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "checkpoint resume does not support the differential oracle",
            ));
        }
        let (ck, corpus) = crate::checkpoint::read_checkpoint(dir.as_ref())?;
        if ck.seed != cfg.seed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "checkpoint was taken under seed {}, not {} — refusing to mix streams",
                    ck.seed, cfg.seed
                ),
            ));
        }
        let mut agent = Campaign::make_agent(factory, cfg);
        agent.restore_counters(ck.agent_execs, ck.agent_restarts);
        agent.cumulative = nf_coverage::LineSet::from_words(ck.cumulative);
        agent.restore_corrections(&ck.corrections);
        agent.restore_faults_fired(ck.fault_hangs, ck.fault_deaths);
        for find in ck.finds {
            agent.triage_mut().record(find.into_find());
        }
        let fuzzer = Fuzzer::from_checkpoint(cfg.mode, cfg.strategy, corpus, ck.fuzzer);
        Ok(Campaign {
            agent,
            fuzzer,
            diff: None,
            cfg: cfg.clone(),
            hourly: ck.hourly,
            hour: ck.hour,
            hour_execs: ck.hour_execs,
            corpus_marks: ck.corpus_marks,
            adopted: ck.adopted,
            sync_stats: SyncStats::default(),
            input: FuzzInput::zeroed(),
            checkpoint: None,
        })
    }

    /// Turns on corpus recording regardless of feedback mode, so an
    /// unguided member still contributes its novel inputs to the sync
    /// pool. `run_campaign_group` calls this for every member of an
    /// actually-syncing group; a lone campaign keeps mode defaults.
    pub fn enable_sync_recording(&mut self) {
        self.fuzzer.set_recording(true);
    }

    /// Takes the corpus delta since the last sync watermark (locally
    /// discovered entries + virgin bits cleared).
    pub fn take_delta(&mut self) -> CorpusDelta {
        // Lockstep's delta scan sweeps the whole virgin map; record
        // the full cost so the counters compare fairly with the
        // sharded async path.
        self.sync_stats.deltas_published += 1;
        self.sync_stats.segments_merged +=
            nf_coverage::bitmap::segments::segment_count(MAP_SIZE) as u64;
        self.sync_stats.words_scanned += (MAP_SIZE / 8) as u64;
        self.fuzzer.corpus_mut().take_delta()
    }

    /// Adopts the sync pool and **replays** every adopted input once —
    /// AFL++ secondaries execute synced queue entries rather than only
    /// mutating them, which is what imports the siblings' discoveries
    /// into this campaign's own coverage (and exec) accounting.
    /// Returns the number of adopted entries.
    pub fn adopt(&mut self, shared: &SharedCorpus) -> usize {
        let inputs = shared.adopt_into(self.fuzzer.corpus_mut());
        for input in &inputs {
            let result = self.agent.run_iteration(input);
            self.fuzzer
                .report_observed(input, result.bitmap, result.lines, result.feedback);
            if let Some(diff) = &mut self.diff {
                diff.observe_exec(input, self.agent.execs());
            }
        }
        self.adopted += inputs.len() as u64;
        // The pool adoption folds the group's whole virgin map in.
        self.sync_stats.deltas_applied += 1;
        self.sync_stats.adoptions += inputs.len() as u64;
        self.sync_stats.segments_merged +=
            nf_coverage::bitmap::segments::segment_count(MAP_SIZE) as u64;
        self.sync_stats.words_scanned += (MAP_SIZE / 8) as u64;
        inputs.len()
    }

    /// `true` when this worker has observed novelty it has not yet
    /// published — the async publish-on-novelty trigger.
    pub fn has_unpublished_novelty(&self) -> bool {
        self.fuzzer.corpus().has_unpublished()
    }

    /// Publishes this worker's accumulated novelty onto the async
    /// delta bus (sharded watermark scan) and self-watermarks the
    /// record so topology echoes terminate. Returns `true` when a
    /// record was actually published (an all-foreign watermark window
    /// can produce an empty delta, which is dropped).
    pub fn publish_async(&mut self, bus: &mut DeltaBus, node: &mut GossipNode) -> bool {
        let delta = self
            .fuzzer
            .corpus_mut()
            .take_delta_async(&mut self.sync_stats);
        if delta.is_empty() {
            return false;
        }
        let rec = bus.publish_own(delta);
        node.note_published(&rec);
        self.sync_stats.deltas_published += 1;
        true
    }

    /// Applies one inbound gossip record by *evidence merge*: foreign
    /// entries join the queue with their classified bitmaps, and
    /// their line evidence is folded straight into this campaign's
    /// coverage accounting — no replay, so adoption costs zero
    /// executions (lockstep's replay-on-adopt remains the A/B
    /// oracle). Returns the number of entries adopted.
    pub fn apply_async(&mut self, rec: &SeqDelta) -> usize {
        let before = self.fuzzer.corpus().len();
        let adopted = self
            .fuzzer
            .corpus_mut()
            .apply_delta(&rec.delta, &mut self.sync_stats);
        if adopted > 0 {
            for entry in self.fuzzer.corpus().entries().skip(before) {
                self.agent.cumulative.union_with(&entry.lines);
            }
            self.adopted += adopted as u64;
        }
        adopted
    }

    /// Finishes the campaign (running any remaining budget) and
    /// produces its result.
    pub fn into_result(mut self) -> CampaignResult {
        if !self.is_complete() {
            let rest = self.cfg.hours - self.hour;
            self.run_hours(rest);
        }
        let (map, file) = self.coverage_geometry();
        let agent = &self.agent;
        let final_coverage = agent.coverage_fraction();
        let mut finds = agent.triage().finds().to_vec();
        let (divergence, diff_execs) = match &self.diff {
            Some(diff) => {
                finds.extend(diff.triage().finds().iter().cloned());
                (diff.stats(), diff.backend_execs())
            }
            None => (DivergenceStats::default(), 0),
        };
        let engine_stats = agent.engine_stats();
        let (hangs, deaths) = agent.faults_fired();
        let alarms = compute_alarms(&self.hourly, &self.corpus_marks);
        CampaignResult {
            faults: FaultCounters { hangs, deaths },
            alarms,
            hourly: self.hourly,
            final_coverage,
            lines: agent.cumulative.clone(),
            map,
            file,
            finds,
            execs: agent.execs(),
            restarts: agent.restarts(),
            mutation: self.fuzzer.mutation_stats(),
            corpus: std::mem::take(self.fuzzer.corpus_mut()),
            adopted: self.adopted,
            divergence,
            diff_execs,
            engine_stats,
            sync: self.sync_stats,
        }
    }
}

/// Runs one campaign of NecoFuzz against the hypervisor `factory`.
/// Boxed hypervisor factory: builds a fresh L0 for a given [`HvConfig`].
pub type HvFactory = Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>;

/// One sync-group member: a hypervisor factory plus its campaign config.
pub type GroupMember = (HvFactory, CampaignConfig);

pub fn run_campaign(
    factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
    cfg: &CampaignConfig,
) -> CampaignResult {
    let mut campaign = Campaign::new(factory, cfg);
    campaign.run_hours(cfg.hours);
    campaign.into_result()
}

/// Runs a sync group: campaigns that pool their corpora.
///
/// Members advance in lockstep epochs of `sync_interval` virtual
/// hours; at each epoch boundary *with budget remaining*, every member
/// publishes its [`CorpusDelta`] to a [`SharedCorpus`], the pool
/// commits the deltas in worker-id order, and every member adopts the
/// merged view. With `sync_interval == 0` — or an interval at or past
/// the budget, where an exchange could no longer influence any
/// execution — the members run exactly like independent
/// `run_campaign` calls and produce bit-identical results to them.
///
/// Worker ids are member indices, so the whole group is a pure
/// function of its (ordered) member list: results are deterministic at
/// any host parallelism.
pub fn run_campaign_group(members: Vec<GroupMember>) -> Vec<CampaignResult> {
    run_campaign_group_observed(members, |_| {})
}

/// [`run_campaign_group`] with a per-hour observer: after every virtual
/// hour — and after any corpus exchange at that boundary — `observe`
/// sees the member states. This is the seam benches and progress
/// reporting use to sample time-to-coverage without re-implementing
/// the sync protocol; the observer cannot influence the run, so
/// results are identical to the unobserved call.
pub fn run_campaign_group_observed(
    members: Vec<GroupMember>,
    mut observe: impl FnMut(&[Campaign]),
) -> Vec<CampaignResult> {
    let Some(first) = members.first() else {
        return Vec::new();
    };
    let hours = first.1.hours;
    let interval = first.1.sync_interval;
    let sync_mode = first.1.sync_mode;
    let topology = first.1.sync_topology;
    // A hard assert: in release builds a mismatched member would
    // silently finish its surplus hours unsynced, voiding the group's
    // determinism guarantee.
    assert!(
        members
            .iter()
            .all(|(_, cfg)| cfg.hours == hours && cfg.sync_interval == interval),
        "sync-group members must share hours and sync_interval"
    );
    assert!(
        members
            .iter()
            .all(|(_, cfg)| cfg.sync_mode == sync_mode && cfg.sync_topology == topology),
        "sync-group members must share sync_mode and sync_topology"
    );
    // Async gossip has no epoch clock: any non-zero interval turns it
    // on. Lockstep keeps its exact historical gating below.
    if sync_mode == SyncMode::Async && interval > 0 && members.len() > 1 {
        return run_campaign_group_async_observed(members, observe);
    }
    // A group only *syncs* when an exchange can still influence an
    // execution: at least two members and a boundary strictly inside
    // the budget. Otherwise members must be bit-identical to isolated
    // `run_campaign` calls — including their corpora — so neither
    // worker ids nor forced recording may leak in.
    let syncing = interval > 0 && members.len() > 1 && interval < hours;
    let mut campaigns: Vec<Campaign> = members
        .into_iter()
        .enumerate()
        .map(|(worker, (factory, cfg))| {
            Campaign::with_worker(factory, &cfg, if syncing { worker as u32 } else { 0 })
        })
        .collect();

    let shared = SharedCorpus::new();
    if syncing {
        for c in &mut campaigns {
            c.enable_sync_recording();
        }
    }
    let mut done = 0;
    while done < hours {
        for c in &mut campaigns {
            c.run_hours(1);
        }
        done += 1;
        if syncing && done < hours && done % interval == 0 {
            for c in &mut campaigns {
                let delta = c.take_delta();
                shared.publish(delta);
            }
            shared.commit_epoch();
            for c in &mut campaigns {
                c.adopt(&shared);
            }
        }
        observe(&campaigns);
    }
    campaigns.into_iter().map(Campaign::into_result).collect()
}

/// The asynchronous sync-group runner: no epoch barrier, no shared
/// pool. Workers advance in single-execution steps; after each step a
/// worker publishes its unpublished novelty onto the [`DeltaBus`]
/// (watermark-sequenced), drains its topology peers' fresh records,
/// evidence-merges them, and relays them onward. At the end of the
/// final hour the group gossips to quiescence, so the last hourly
/// observation — and the results — see a converged fleet.
///
/// Determinism: workers step in worker-id order (the group is one
/// scheduling unit, exactly like lockstep groups), the bus assigns
/// sequence numbers in publish order, and drains scan peers in fixed
/// order — the whole run is a pure function of (member list,
/// topology), reproducible at any host parallelism.
fn run_campaign_group_async_observed(
    members: Vec<GroupMember>,
    mut observe: impl FnMut(&[Campaign]),
) -> Vec<CampaignResult> {
    let hours = members[0].1.hours;
    let execs_per_hour = members[0].1.execs_per_hour;
    let topology = members[0].1.sync_topology;
    let n = members.len() as u32;
    let mut campaigns: Vec<Campaign> = members
        .into_iter()
        .enumerate()
        .map(|(worker, (factory, cfg))| Campaign::with_worker(factory, &cfg, worker as u32))
        .collect();
    for c in &mut campaigns {
        c.enable_sync_recording();
    }
    let mut bus = DeltaBus::new(n as usize);
    let mut nodes: Vec<GossipNode> = (0..n).map(|w| GossipNode::new(w, n, topology)).collect();

    // One gossip turn for worker `w`: publish on novelty, then drain,
    // apply, and relay the fresh inbound records. Returns how many
    // records moved (the quiescence signal).
    let turn = |c: &mut Campaign, node: &mut GossipNode, bus: &mut DeltaBus, w: u32| {
        let mut moved = 0usize;
        if c.has_unpublished_novelty() && c.publish_async(bus, node) {
            moved += 1;
        }
        for rec in node.drain(bus) {
            c.apply_async(&rec);
            bus.relay(w, rec);
            moved += 1;
        }
        moved
    };

    for done in 0..hours {
        for _ in 0..execs_per_hour {
            for (w, c) in campaigns.iter_mut().enumerate() {
                c.run_execs(1);
                turn(c, &mut nodes[w], &mut bus, w as u32);
            }
        }
        if done + 1 == hours {
            // Final drain: keep gossiping (no more executions) until a
            // full round moves nothing, so in-flight knowledge lands
            // before the last observation.
            loop {
                let mut moved = 0;
                for (w, c) in campaigns.iter_mut().enumerate() {
                    moved += turn(c, &mut nodes[w], &mut bus, w as u32);
                }
                if moved == 0 {
                    break;
                }
            }
        }
        observe(&campaigns);
    }
    campaigns.into_iter().map(Campaign::into_result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_hv::Vkvm;

    fn kvm_factory() -> Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>> {
        Box::new(|cfg| Box::new(Vkvm::new(cfg)))
    }

    #[test]
    fn short_campaign_produces_samples() {
        let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 3, 0).with_execs_per_hour(40);
        let result = run_campaign(kvm_factory(), &cfg);
        assert_eq!(result.hourly.len(), 3);
        assert_eq!(result.execs, 120);
        assert!(result.final_coverage > 0.3, "got {}", result.final_coverage);
        // Hourly samples are monotone.
        for w in result.hourly.windows(2) {
            assert!(w[1].coverage >= w[0].coverage);
        }
    }

    #[test]
    fn campaigns_are_seed_deterministic() {
        let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 2, 9).with_execs_per_hour(30);
        let a = run_campaign(kvm_factory(), &cfg);
        let b = run_campaign(kvm_factory(), &cfg);
        assert_eq!(a.final_coverage, b.final_coverage);
        assert_eq!(a.execs, b.execs);
        assert_eq!(a.corpus, b.corpus);
    }

    #[test]
    fn resumed_campaign_carries_corpus_knowledge_and_is_deterministic() {
        let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 2, 3)
            .with_execs_per_hour(40)
            .with_mode(Mode::Guided);
        let first = run_campaign(kvm_factory(), &cfg);
        let queued = first.corpus.len();
        assert!(queued > 0, "guided leg must promote entries");

        let resume = |corpus: nf_fuzz::Corpus| {
            Campaign::with_corpus(kvm_factory(), &cfg, corpus).into_result()
        };
        let a = resume(first.corpus.clone());
        let b = resume(first.corpus.clone());
        assert_eq!(a, b, "resume must be a pure function of (cfg, corpus)");
        // The queue is carried over (and only ever grows from there),
        // and the loaded virgin knowledge suppresses re-promotion of
        // inputs the first leg already found interesting.
        assert!(a.corpus.len() >= queued);
        assert!(
            a.corpus.len() - queued < queued,
            "resumed leg re-promoted too much: {} new vs {queued} carried",
            a.corpus.len() - queued
        );
        assert_eq!(
            a.corpus.worker(),
            first.corpus.worker(),
            "worker id travels with the corpus"
        );
    }

    #[test]
    fn structured_campaigns_are_deterministic_and_record_provenance() {
        let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 3, 5)
            .with_execs_per_hour(40)
            .with_mode(Mode::Guided)
            .with_strategy(MutationStrategy::Structured);
        let a = run_campaign(kvm_factory(), &cfg);
        let b = run_campaign(kvm_factory(), &cfg);
        assert_eq!(a, b, "structured runs must be a pure function of cfg");
        assert_eq!(a.mutation.strategy, MutationStrategy::Structured);
        assert!(a.mutation.operators.iter().any(|s| s.generated > 0));
        assert!(
            a.corpus.entries().any(|e| e.provenance.op.is_some()),
            "queued structured children must carry operator provenance"
        );
    }

    #[test]
    fn different_seeds_explore_differently() {
        let mk = |seed| CampaignConfig::necofuzz(CpuVendor::Intel, 2, seed).with_execs_per_hour(30);
        let a = run_campaign(kvm_factory(), &mk(1));
        let b = run_campaign(kvm_factory(), &mk(2));
        // Coverage may coincide, but the covered line sets rarely do.
        assert!(
            a.lines != b.lines || (a.final_coverage - b.final_coverage).abs() > 0.0,
            "two seeds should not be bit-identical"
        );
    }

    #[test]
    fn stepped_campaign_equals_one_shot() {
        let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 4, 7).with_execs_per_hour(30);
        let one_shot = run_campaign(kvm_factory(), &cfg);
        let mut stepped = Campaign::new(kvm_factory(), &cfg);
        stepped.run_hours(1);
        stepped.run_hours(2);
        stepped.run_hours(1);
        assert!(stepped.is_complete());
        assert_eq!(stepped.into_result(), one_shot);
    }

    #[test]
    fn checkpoint_resume_converges_to_uninterrupted_result() {
        // Guided mode + an aggressive fault plan, so every piece of
        // checkpointed state is live: queue, scheduler, triage finds,
        // learned corrections, and fault counters.
        let dir = std::env::temp_dir().join(format!(
            "nf-checkpoint-resume-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 4, 5)
            .with_execs_per_hour(40)
            .with_mode(Mode::Guided)
            .with_fault_plan(FaultPlan::uniform(9, 0.05));
        let baseline = run_campaign(kvm_factory(), &cfg);

        let mut interrupted = Campaign::new(kvm_factory(), &cfg);
        interrupted.set_checkpoint(&dir, 1);
        interrupted.run_hours(2);
        // The "kill": every in-memory structure is lost; only the
        // hour-2 checkpoint on disk survives.
        drop(interrupted);

        let mut resumed =
            Campaign::resume_from_checkpoint(kvm_factory(), &cfg, &dir).expect("resume");
        assert_eq!(resumed.hours_done(), 2, "resume continues at hour 2");
        resumed.run_hours(cfg.hours);
        let result = resumed.into_result();
        assert_eq!(
            result, baseline,
            "kill+resume must converge to the uninterrupted result"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_seed_mismatch_and_missing_dirs() {
        let dir = std::env::temp_dir().join(format!(
            "nf-checkpoint-guard-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 2, 5).with_execs_per_hour(20);
        assert!(
            Campaign::resume_from_checkpoint(kvm_factory(), &cfg, &dir).is_err(),
            "missing checkpoint dir must fail loudly"
        );
        let mut campaign = Campaign::new(kvm_factory(), &cfg);
        campaign.set_checkpoint(&dir, 1);
        campaign.run_hours(1);
        let other = CampaignConfig::necofuzz(CpuVendor::Intel, 2, 6).with_execs_per_hour(20);
        assert!(
            Campaign::resume_from_checkpoint(kvm_factory(), &other, &dir).is_err(),
            "a different seed is a different stream, not a continuation"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn into_result_runs_remaining_budget() {
        let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 3, 1).with_execs_per_hour(20);
        let partial = Campaign::new(kvm_factory(), &cfg);
        let result = partial.into_result();
        assert_eq!(result.execs, 60, "unfinished budget must be run");
        assert_eq!(result.hourly.len(), 3);
    }

    #[test]
    fn synced_group_members_share_corpus_entries() {
        let mk = |seed| {
            CampaignConfig::necofuzz(CpuVendor::Intel, 4, seed)
                .with_execs_per_hour(40)
                .with_mode(Mode::Guided)
                .with_sync_interval(1)
        };
        let members = (0..3).map(|s| (kvm_factory(), mk(s))).collect();
        let results = run_campaign_group(members);
        assert_eq!(results.len(), 3);
        assert!(
            results.iter().any(|r| r.adopted > 0),
            "guided siblings must adopt at least one entry: {:?}",
            results.iter().map(|r| r.adopted).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unsynced_group_is_bit_identical_to_lone_campaigns() {
        let mk = |seed, interval: u32| {
            CampaignConfig::necofuzz(CpuVendor::Intel, 3, seed)
                .with_execs_per_hour(30)
                .with_mode(Mode::Guided)
                .with_sync_interval(interval)
        };
        let lone: Vec<CampaignResult> = (0..2)
            .map(|s| run_campaign(kvm_factory(), &mk(s, 0)))
            .collect();
        // interval == 0: never sync. interval == hours: the only
        // boundary is the end of the budget, where an exchange could
        // not influence anything — also bit-identical.
        for interval in [0u32, 3] {
            let group =
                run_campaign_group((0..2).map(|s| (kvm_factory(), mk(s, interval))).collect());
            for (worker, (g, l)) in group.iter().zip(&lone).enumerate() {
                assert_eq!(
                    g.hourly, l.hourly,
                    "interval {interval} diverged for worker {worker}"
                );
                assert_eq!(g.finds, l.finds);
                assert_eq!(g.lines, l.lines);
                assert_eq!(g.execs, l.execs);
                assert_eq!(g.adopted, 0);
            }
        }
    }
}
