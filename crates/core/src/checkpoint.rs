//! Campaign checkpoint persistence: periodic on-disk snapshots of a
//! running campaign and the resume path that continues from one.
//!
//! A checkpoint captures everything the exec stream depends on — the
//! mutation RNG position, the corpus, the adaptive scheduler, the
//! cumulative coverage, the triage index, the learned oracle
//! corrections, and the fault-injection fire counters — so a campaign
//! killed at any point and resumed from its last checkpoint converges
//! to the *identical* [`crate::campaign::CampaignResult`] an
//! uninterrupted run produces. `fault_tolerance --smoke` gates that
//! equality; the proptest suite covers it across backend × vendor ×
//! strategy.
//!
//! The format is a versioned, dependency-free text STATE file next to
//! a standard corpus save:
//!
//! ```text
//! dir/
//!   STATE     key-value lines (counters, RNG words, finds, corrections)
//!   corpus/   [`Corpus::save_to`] tree
//! ```
//!
//! Writes are atomic at directory granularity: the whole tree is
//! staged into a sibling `<dir>.tmp` and swapped into place with
//! renames (the previous checkpoint briefly becomes `<dir>.old`), so a
//! host that dies mid-checkpoint leaves either the old complete
//! checkpoint or the new one — never a torn mix. The reader falls back
//! to `<dir>.old` when a crash landed between the two renames.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nf_fuzz::{Corpus, FuzzInput, FuzzerState, Operator, ProfileState, HAVOC_ARMS};
use nf_hv::CrashKind;

use crate::agent::BugFind;
use crate::campaign::{Campaign, HourSample};

/// On-disk checkpoint format version (bump on layout changes).
const FORMAT_VERSION: u32 = 1;

/// One persisted triage find (a [`BugFind`] flattened for the STATE
/// file; the input travels as raw bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct FindRecord {
    /// Stable bug identifier.
    pub bug_id: String,
    /// Detector that fired.
    pub kind: CrashKind,
    /// Diagnostic message.
    pub message: String,
    /// Execution index of first sighting.
    pub exec: u64,
    /// The triggering input's bytes.
    pub input: Vec<u8>,
}

impl FindRecord {
    /// Flattens a live triage find for persistence.
    pub fn of(find: &BugFind) -> FindRecord {
        FindRecord {
            bug_id: find.bug_id.clone(),
            kind: find.kind,
            message: find.message.clone(),
            exec: find.exec,
            input: find.input.bytes.clone(),
        }
    }

    /// Rebuilds the live triage record (the inverse of
    /// [`FindRecord::of`]).
    pub fn into_find(self) -> BugFind {
        BugFind {
            bug_id: self.bug_id,
            kind: self.kind,
            message: self.message,
            exec: self.exec,
            input: Arc::new(FuzzInput { bytes: self.input }),
        }
    }
}

/// Everything a [`Campaign`] needs besides its corpus to continue
/// exactly where it stood — the in-memory image of a STATE file.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// The campaign's RNG seed — a resume guard: resuming under a
    /// different seed is a config mismatch, not a continuation.
    pub seed: u64,
    /// Virtual hours completed.
    pub hour: u32,
    /// Executions inside the current incomplete hour (always zero for
    /// checkpoints written at hour boundaries; kept for generality).
    pub hour_execs: u32,
    /// Corpus entries adopted from sync-group siblings.
    pub adopted: u64,
    /// Hourly coverage samples so far.
    pub hourly: Vec<HourSample>,
    /// Corpus size at each completed hour (yield-alarm input).
    pub corpus_marks: Vec<u64>,
    /// The fuzzer's non-corpus state (RNG position, counters,
    /// scheduler).
    pub fuzzer: FuzzerState,
    /// The agent's lifetime exec count.
    pub agent_execs: u64,
    /// The agent's watchdog-restart count.
    pub agent_restarts: u64,
    /// The cumulative covered-line set, as raw bitset words.
    pub cumulative: Vec<u64>,
    /// Learned oracle corrections, as `(rule, detail)` pairs in
    /// discovery order.
    pub corrections: Vec<(String, String)>,
    /// Unique triage finds in discovery order.
    pub finds: Vec<FindRecord>,
    /// Injected hang faults fired so far.
    pub fault_hangs: u64,
    /// Injected host-death faults fired so far.
    pub fault_deaths: u64,
}

/// Writes `campaign`'s full resumable state to `dir` atomically.
pub fn write_checkpoint(campaign: &Campaign, dir: &Path) -> io::Result<()> {
    let state = campaign.checkpoint_snapshot();
    let tmp = sibling(dir, ".tmp");
    let old = sibling(dir, ".old");
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp)?;
    std::fs::write(tmp.join("STATE"), render_state(&state))?;
    campaign.corpus().save_to(tmp.join("corpus"))?;
    let _ = std::fs::remove_dir_all(&old);
    if dir.exists() {
        std::fs::rename(dir, &old)?;
    }
    std::fs::rename(&tmp, dir)?;
    let _ = std::fs::remove_dir_all(&old);
    Ok(())
}

/// Loads a checkpoint previously written by [`write_checkpoint`],
/// falling back to the `<dir>.old` backup when `dir` itself has no
/// readable STATE (a host death between the two swap renames).
pub fn read_checkpoint(dir: &Path) -> io::Result<(CampaignCheckpoint, Corpus)> {
    let dir = match std::fs::read_to_string(dir.join("STATE")) {
        Ok(_) => dir.to_path_buf(),
        Err(primary) => {
            let old = sibling(dir, ".old");
            if old.join("STATE").is_file() {
                old
            } else {
                return Err(primary);
            }
        }
    };
    let state = parse_state(&std::fs::read_to_string(dir.join("STATE"))?)?;
    let corpus = Corpus::load_from(dir.join("corpus"))?;
    Ok((state, corpus))
}

/// `dir` with `suffix` appended to its final component — the
/// staging/backup siblings of the atomic swap.
fn sibling(dir: &Path, suffix: &str) -> PathBuf {
    let mut os = dir.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

/// Serializes a checkpoint into the STATE text format.
fn render_state(state: &CampaignCheckpoint) -> String {
    let mut out = String::new();
    out.push_str(&format!("necofuzz-checkpoint v{FORMAT_VERSION}\n"));
    out.push_str(&format!("seed {}\n", state.seed));
    out.push_str(&format!("hour {}\n", state.hour));
    out.push_str(&format!("hour_execs {}\n", state.hour_execs));
    out.push_str(&format!("adopted {}\n", state.adopted));
    let f = &state.fuzzer;
    out.push_str(&format!(
        "rng {} {} {} {}\n",
        f.rng[0], f.rng[1], f.rng[2], f.rng[3]
    ));
    out.push_str(&format!("fuzzer_execs {}\n", f.execs));
    out.push_str(&format!("fuzzer_crashes {}\n", f.crashes));
    out.push_str(&format!("fuzzer_queue_adds {}\n", f.queue_adds));
    out.push_str(&format!("fuzzer_recording {}\n", u8::from(f.recording)));
    out.push_str(&format!("havoc_arms{}\n", join(&f.havoc_arms)));
    out.push_str(&format!("profile_weights{}\n", join(&f.profile.weights)));
    out.push_str(&format!(
        "profile_generated{}\n",
        join(&f.profile.generated)
    ));
    out.push_str(&format!("profile_queued{}\n", join(&f.profile.queued)));
    out.push_str(&format!("agent_execs {}\n", state.agent_execs));
    out.push_str(&format!("agent_restarts {}\n", state.agent_restarts));
    out.push_str(&format!("fault_hangs {}\n", state.fault_hangs));
    out.push_str(&format!("fault_deaths {}\n", state.fault_deaths));
    out.push_str(&format!("cumulative{}\n", join(&state.cumulative)));
    // Coverage fractions round-trip through their IEEE bit patterns —
    // decimal formatting would lose the exact-equality guarantee.
    out.push_str("hourly");
    for sample in &state.hourly {
        out.push_str(&format!(" {}:{}", sample.hour, sample.coverage.to_bits()));
    }
    out.push('\n');
    out.push_str(&format!("corpus_marks{}\n", join(&state.corpus_marks)));
    for (rule, detail) in &state.corrections {
        out.push_str(&format!("correction {rule} {}\n", hex(detail.as_bytes())));
    }
    for find in &state.finds {
        out.push_str(&format!(
            "find {} {} {} {} {}\n",
            kind_name(find.kind),
            find.exec,
            hex(find.bug_id.as_bytes()),
            hex(find.message.as_bytes()),
            hex(&find.input),
        ));
    }
    out
}

/// Parses a STATE file (the inverse of [`render_state`]).
fn parse_state(text: &str) -> io::Result<CampaignCheckpoint> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    if header != format!("necofuzz-checkpoint v{FORMAT_VERSION}") {
        return Err(bad(format!("unsupported checkpoint format: {header:?}")));
    }
    let mut state = CampaignCheckpoint {
        seed: 0,
        hour: 0,
        hour_execs: 0,
        adopted: 0,
        hourly: Vec::new(),
        corpus_marks: Vec::new(),
        fuzzer: FuzzerState {
            rng: [0; 4],
            execs: 0,
            crashes: 0,
            queue_adds: 0,
            havoc_arms: [0; HAVOC_ARMS],
            recording: false,
            profile: ProfileState {
                weights: [0; Operator::COUNT],
                generated: [0; Operator::COUNT],
                queued: [0; Operator::COUNT],
            },
        },
        agent_execs: 0,
        agent_restarts: 0,
        cumulative: Vec::new(),
        corrections: Vec::new(),
        finds: Vec::new(),
        fault_hangs: 0,
        fault_deaths: 0,
    };
    for line in lines {
        let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
        match key {
            "seed" => state.seed = num(rest)?,
            "hour" => state.hour = num(rest)?,
            "hour_execs" => state.hour_execs = num(rest)?,
            "adopted" => state.adopted = num(rest)?,
            "rng" => state.fuzzer.rng = fixed(rest)?,
            "fuzzer_execs" => state.fuzzer.execs = num(rest)?,
            "fuzzer_crashes" => state.fuzzer.crashes = num(rest)?,
            "fuzzer_queue_adds" => state.fuzzer.queue_adds = num(rest)?,
            "fuzzer_recording" => state.fuzzer.recording = num::<u8>(rest)? != 0,
            "havoc_arms" => state.fuzzer.havoc_arms = fixed(rest)?,
            "profile_weights" => state.fuzzer.profile.weights = fixed(rest)?,
            "profile_generated" => state.fuzzer.profile.generated = fixed(rest)?,
            "profile_queued" => state.fuzzer.profile.queued = fixed(rest)?,
            "agent_execs" => state.agent_execs = num(rest)?,
            "agent_restarts" => state.agent_restarts = num(rest)?,
            "fault_hangs" => state.fault_hangs = num(rest)?,
            "fault_deaths" => state.fault_deaths = num(rest)?,
            "cumulative" => state.cumulative = list(rest)?,
            "hourly" => {
                state.hourly = rest
                    .split_whitespace()
                    .map(|pair| {
                        let (hour, bits) = pair
                            .split_once(':')
                            .ok_or_else(|| bad(format!("bad hourly sample: {pair:?}")))?;
                        Ok(HourSample {
                            hour: num(hour)?,
                            coverage: f64::from_bits(num(bits)?),
                        })
                    })
                    .collect::<io::Result<_>>()?;
            }
            "corpus_marks" => state.corpus_marks = list(rest)?,
            "correction" => {
                let (rule, detail) = rest
                    .split_once(' ')
                    .ok_or_else(|| bad(format!("bad correction line: {line:?}")))?;
                state
                    .corrections
                    .push((rule.to_string(), utf8(unhex(detail)?)?));
            }
            "find" => {
                let fields: Vec<&str> = rest.split_whitespace().collect();
                let [kind, exec, bug_id, message, input] = fields[..] else {
                    return Err(bad(format!("bad find line: {line:?}")));
                };
                state.finds.push(FindRecord {
                    bug_id: utf8(unhex(bug_id)?)?,
                    kind: kind_from_name(kind)
                        .ok_or_else(|| bad(format!("unknown crash kind: {kind:?}")))?,
                    message: utf8(unhex(message)?)?,
                    exec: num(exec)?,
                    input: unhex(input)?,
                });
            }
            _ => {} // Unknown keys are skipped (forward compatibility).
        }
    }
    Ok(state)
}

/// Stable persistence token of a [`CrashKind`].
fn kind_name(kind: CrashKind) -> &'static str {
    match kind {
        CrashKind::HostCrash => "host_crash",
        CrashKind::HostHang => "host_hang",
        CrashKind::Ubsan => "ubsan",
        CrashKind::Kasan => "kasan",
        CrashKind::AssertFail => "assert_fail",
        CrashKind::Warning => "warning",
        CrashKind::Divergence => "divergence",
        CrashKind::HungExec => "hung_exec",
    }
}

/// Inverse of [`kind_name`].
fn kind_from_name(name: &str) -> Option<CrashKind> {
    Some(match name {
        "host_crash" => CrashKind::HostCrash,
        "host_hang" => CrashKind::HostHang,
        "ubsan" => CrashKind::Ubsan,
        "kasan" => CrashKind::Kasan,
        "assert_fail" => CrashKind::AssertFail,
        "warning" => CrashKind::Warning,
        "divergence" => CrashKind::Divergence,
        "hung_exec" => CrashKind::HungExec,
        _ => return None,
    })
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Space-prefixed join of an integer slice (`" 1 2 3"`, empty for an
/// empty slice) — the value half of a list line.
fn join<T: std::fmt::Display>(values: &[T]) -> String {
    values.iter().map(|v| format!(" {v}")).collect()
}

fn num<T: std::str::FromStr>(token: &str) -> io::Result<T> {
    token
        .trim()
        .parse()
        .map_err(|_| bad(format!("bad number: {token:?}")))
}

fn list<T: std::str::FromStr>(rest: &str) -> io::Result<Vec<T>> {
    rest.split_whitespace().map(num).collect()
}

fn fixed<T: std::str::FromStr + Copy + Default, const N: usize>(rest: &str) -> io::Result<[T; N]> {
    let values: Vec<T> = list(rest)?;
    if values.len() != N {
        return Err(bad(format!("expected {N} values, got {}", values.len())));
    }
    let mut out = [T::default(); N];
    out.copy_from_slice(&values);
    Ok(out)
}

/// Lowercase hex encoding; the empty string encodes as `-` so every
/// field stays a single whitespace-delimited token.
fn hex(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        return "-".to_string();
    }
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Inverse of [`hex`].
fn unhex(s: &str) -> io::Result<Vec<u8>> {
    if s == "-" {
        return Ok(Vec::new());
    }
    if !s.len().is_multiple_of(2) || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(bad(format!("bad hex field: {s:?}")));
    }
    Ok((0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect())
}

fn utf8(bytes: Vec<u8>) -> io::Result<String> {
    String::from_utf8(bytes).map_err(|_| bad("non-UTF-8 text field".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> CampaignCheckpoint {
        CampaignCheckpoint {
            seed: 7,
            hour: 3,
            hour_execs: 0,
            adopted: 2,
            hourly: vec![
                HourSample {
                    hour: 1,
                    coverage: 0.125,
                },
                HourSample {
                    hour: 2,
                    coverage: 0.37281,
                },
            ],
            corpus_marks: vec![5, 9],
            fuzzer: FuzzerState {
                rng: [1, u64::MAX, 3, 4],
                execs: 500,
                crashes: 2,
                queue_adds: 17,
                havoc_arms: [1, 2, 3, 4, 5, 6, 7],
                recording: true,
                profile: ProfileState {
                    weights: [8; Operator::COUNT],
                    generated: [3; Operator::COUNT],
                    queued: [1; Operator::COUNT],
                },
            },
            agent_execs: 500,
            agent_restarts: 1,
            cumulative: vec![0xdead_beef, 0, u64::MAX],
            corrections: vec![
                ("cr4_pae_quirk".to_string(), "learned at exec 3".to_string()),
                ("guest.ss_rpl".to_string(), String::new()),
            ],
            finds: vec![FindRecord {
                bug_id: "kvm-bug-1".to_string(),
                kind: CrashKind::Kasan,
                message: "slab-out-of-bounds in vmcs12 copy".to_string(),
                exec: 123,
                input: vec![0, 1, 2, 255],
            }],
            fault_hangs: 4,
            fault_deaths: 1,
        }
    }

    #[test]
    fn state_round_trips_exactly() {
        let state = sample_state();
        let parsed = parse_state(&render_state(&state)).expect("parse");
        assert_eq!(parsed, state);
    }

    #[test]
    fn empty_fields_and_exotic_floats_round_trip() {
        let mut state = sample_state();
        state.hourly = vec![HourSample {
            hour: 1,
            coverage: f64::from_bits(0x7ff8_0000_0000_0001), // a NaN payload
        }];
        state.finds[0].message = String::new();
        state.finds[0].input = Vec::new();
        state.cumulative = Vec::new();
        let parsed = parse_state(&render_state(&state)).expect("parse");
        assert_eq!(parsed.hourly[0].coverage.to_bits(), 0x7ff8_0000_0000_0001);
        assert_eq!(parsed.finds, state.finds);
        assert_eq!(parsed.cumulative, state.cumulative);
    }

    #[test]
    fn version_and_kind_guards_reject_garbage() {
        assert!(parse_state("necofuzz-checkpoint v99\n").is_err());
        let torn = render_state(&sample_state()).replace("kasan", "gremlin");
        assert!(parse_state(&torn).is_err());
    }

    #[test]
    fn every_crash_kind_has_a_stable_token() {
        for kind in [
            CrashKind::HostCrash,
            CrashKind::HostHang,
            CrashKind::Ubsan,
            CrashKind::Kasan,
            CrashKind::AssertFail,
            CrashKind::Warning,
            CrashKind::Divergence,
            CrashKind::HungExec,
        ] {
            assert_eq!(kind_from_name(kind_name(kind)), Some(kind));
        }
    }
}
