//! NecoFuzz — fuzzing nested virtualization via fuzz-harness VMs.
//!
//! This crate is the paper's primary contribution (Ishii, Fukai,
//! Shinagawa — EuroSys 2026): a fuzzing framework that synthesizes
//! complete **fuzz-harness VMs** whose internal states sit near the
//! boundary between valid and invalid, to exercise the nested
//! virtualization logic of L0 hypervisors.
//!
//! The VM generator has three components (paper §3.2):
//!
//! - [`harness::ExecutionHarness`] — template-driven initialization and
//!   exit-triggering runtime phases;
//! - [`validator::VmStateValidator`] — Bochs-derived rounding to valid
//!   states, physical-CPU-oracle self-correction, and selective bit
//!   invalidation;
//! - [`configurator::VcpuConfigurator`] — vCPU feature bit-array
//!   exploration through per-hypervisor adapters.
//!
//! An [`agent::Agent`] coordinates the AFL++-style engine (`nf-fuzz`),
//! the harness VM, and the target hypervisor (`nf-hv`); its hot path
//! runs on the snapshot-based [`engine::ExecutionEngine`], which
//! restores cached booted images instead of rebooting per iteration
//! (paper §3.2 — the fuzz-harness VM exists to avoid guest-OS
//! reboots). [`campaign::run_campaign`] reproduces one of the paper's
//! virtual-time experiments, and the [`orchestrator`] fans a whole
//! experiment grid out over a worker pool.
//!
//! # Examples
//!
//! Plan a small campaign grid and run it in parallel — results come
//! back in plan order, identical to a serial run:
//!
//! ```
//! use necofuzz::orchestrator::{Backend, CampaignExecutor, CampaignPlan};
//! use nf_hv::Vkvm;
//! use nf_x86::CpuVendor;
//!
//! let plan = CampaignPlan::new()
//!     .backend(Backend::new("vkvm", |c| Box::new(Vkvm::new(c))))
//!     .vendors(&[CpuVendor::Intel])
//!     .seeds(0..2)
//!     .hours(1)
//!     .execs_per_hour(50);
//!
//! let results = CampaignExecutor::new().jobs(2).run(&plan);
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.final_coverage > 0.2));
//! ```
//!
//! A single campaign without the orchestrator:
//!
//! ```
//! use necofuzz::campaign::{run_campaign, CampaignConfig};
//! use nf_hv::Vkvm;
//! use nf_x86::CpuVendor;
//!
//! let cfg = CampaignConfig {
//!     hours: 1,
//!     execs_per_hour: 50,
//!     ..CampaignConfig::necofuzz(CpuVendor::Intel, 1, 0)
//! };
//! let result = run_campaign(Box::new(|c| Box::new(Vkvm::new(c))), &cfg);
//! assert!(result.final_coverage > 0.2);
//! ```

pub mod agent;
pub mod campaign;
pub mod checkpoint;
pub mod configurator;
pub mod differential;
pub mod engine;
pub mod harness;
pub mod input;
pub mod orchestrator;
pub mod triage;
pub mod validator;

pub use agent::{Agent, BugFind, ComponentMask};
pub use campaign::{
    run_campaign, run_campaign_group, Campaign, CampaignConfig, CampaignResult, FaultCounters,
    HealthAlarms, HourSample, EXECS_PER_HOUR, PLATEAU_ALARM_HOURS,
};
pub use checkpoint::{read_checkpoint, write_checkpoint, CampaignCheckpoint, FindRecord};
pub use configurator::{HvAdapter, KvmAdapter, VboxAdapter, VcpuConfigurator, XenAdapter};
pub use differential::{
    allowed_by, backend_factory, diff_observations, parse_divergence_pair, AllowRule, DiffOracle,
    DifferentialRunner, DivergenceSite, DivergenceStats, ExecObservation, ObsResult, OracleMode,
    ALLOWLIST, SEEDED_HLT_BACKEND,
};
pub use engine::{
    EngineError, EngineMode, EngineStats, ExecutionEngine, PrefixStoreMode, DEFAULT_CACHE_CAPACITY,
    DEFAULT_PREFIX_BUDGET, DEFAULT_PREFIX_THRESHOLD, MAX_RESTORE_RETRIES,
};
pub use harness::{
    ExecEvent, ExecObserver, ExecPhase, ExecutionHarness, InitPlan, InitStep, NopObserver,
};
pub use input::{InputLayout, InputView, SectionSpan};
pub use nf_fuzz::{Corpus, CorpusDelta, MutationStrategy, SharedCorpus};
pub use orchestrator::{
    default_jobs, Backend, CampaignExecutor, CampaignJob, CampaignPlan, Progress, SharedFactory,
    SyncGroup, Task, MAX_TASK_RESTARTS,
};
pub use triage::{minimize_input, CrashTriage, ReplayOracle};
pub use validator::{Correction, OracleVerdict, VmStateValidator};
