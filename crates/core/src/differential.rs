//! Cross-backend differential oracle: N-way snapshot replay with a
//! golden-model reference.
//!
//! The sanitizer oracle (`nf_hv::sanitizer`) only catches bugs that
//! make the *host* misbehave — memory errors, asserts, hangs. A whole
//! class of nested-virtualization bugs is silent at the host level:
//! the hypervisor stays healthy but tells its L1 guest the wrong thing
//! (a misreported exit reason, a dropped field sync, a wrong error
//! form). This module detects those by running every scenario on a
//! configurable set of backends — any subset of `vkvm`/`vxen`/`vvbox`
//! plus [`nf_hv::SiliconGolden`], the bare-metal reference model — and
//! diffing what each backend *showed its guest*.
//!
//! # Observation canonicalization
//!
//! A backend's [`ExecObservation`] records only L1-visible events:
//!
//! - the [`nf_hv::L1Result`] of every initialization step;
//! - every runtime exit **reflected to L1** (the raw reason L1's exit
//!   handler reads), and a terminal host death;
//! - the [`nf_hv::L1Result`] of every L1 exit-handler action;
//! - the final [`nf_hv::GuestObservation`]: control registers, VMX
//!   status, current-VMCS pointer, and a digest of the VMCS12 as
//!   `vmread` would return it.
//!
//! Deliberately **not** recorded: `NoExit`, `HandledByL0`, and
//! `NoGuest` runtime results. Whether L0 handles an exit itself or
//! lets L2 run natively is L0 *policy* — two correct hypervisors may
//! legitimately differ — while every reflected exit and every emulated
//! instruction result is architecture, where they may not.
//!
//! # Divergence findings
//!
//! Observations are diffed pairwise. The first divergent site — event,
//! stream length, or final-state field — becomes a
//! [`nf_hv::CrashKind::Divergence`] finding in the campaign's
//! [`crate::triage::CrashTriage`], deduplicated by the
//! `(backend pair, site tag)` signature (the event *index* is excluded
//! so one root cause surfacing at different steps stays one bug).
//! Executions where either side crashed or died are skipped — the
//! sanitizer oracle owns those. Known-intentional backend quirks are
//! filtered by an explicit [`AllowRule`] table.
//!
//! [`DiffOracle`] is the replay/minimization half: like
//! [`crate::triage::ReplayOracle`] it re-runs findings from clean
//! agents (cold then converged validator), and its minimizer only
//! accepts truncations that preserve the *divergence signature* — a
//! reproducer that merely still crashes, or diverges somewhere else,
//! is rejected.

use std::sync::Arc;

use nf_fuzz::FuzzInput;
use nf_hv::{CrashKind, GuestObservation, L1Result, L2Result, SiliconGolden, Vkvm, Vvbox, Vxen};
use nf_x86::CpuVendor;

use crate::agent::{Agent, BugFind, ComponentMask};
use crate::campaign::HvFactory;
use crate::engine::EngineMode;
use crate::harness::ExecObserver;
use crate::triage::{minimize_input, CrashTriage};

/// Which anomaly oracle a campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// The default: sanitizer/log/watchdog detectors only.
    Sanitizer,
    /// Sanitizers plus the cross-backend differential oracle: every
    /// input is replayed on the configured backend set and the
    /// canonical observations are diffed pairwise.
    Differential,
}

impl OracleMode {
    /// Parses the CLI spelling (`sanitizer` / `differential`).
    pub fn parse(s: &str) -> Option<OracleMode> {
        match s {
            "sanitizer" => Some(OracleMode::Sanitizer),
            "differential" => Some(OracleMode::Differential),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            OracleMode::Sanitizer => "sanitizer",
            OracleMode::Differential => "differential",
        }
    }
}

impl std::fmt::Display for OracleMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Name of the seeded-misvirtualization vkvm variant: a `vkvm` whose
/// reflect path misreports HLT exits to L1 as PAUSE exits (see
/// `VkvmBugs::misreport_hlt_exit`). The bug is invisible to every
/// sanitizer — the host stays healthy — and exists so differential
/// self-tests and the `diff_oracle` bench can prove the oracle catches
/// what the sanitizers cannot. Not reachable from any product
/// configuration.
pub const SEEDED_HLT_BACKEND: &str = "vkvm-hltbug";

/// Resolves a differential-backend name to a hypervisor factory.
///
/// Known names: `vkvm`, `vxen`, `vvbox`, `golden` (the
/// [`SiliconGolden`] bare-metal reference), and
/// [`SEEDED_HLT_BACKEND`] (test-only).
pub fn backend_factory(name: &str) -> Option<HvFactory> {
    Some(match name {
        "vkvm" => Box::new(|c| Box::new(Vkvm::new(c))),
        "vxen" => Box::new(|c| Box::new(Vxen::new(c))),
        "vvbox" => Box::new(|c| Box::new(Vvbox::new(c))),
        "golden" => Box::new(|c| Box::new(SiliconGolden::new(c))),
        SEEDED_HLT_BACKEND => Box::new(|c| {
            let mut hv = Vkvm::new(c);
            hv.bugs.misreport_hlt_exit = true;
            Box::new(hv)
        }),
        _ => return None,
    })
}

/// One canonical L1-visible event result, backend-neutral.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsResult {
    /// Instruction completed with a read value (`L1Result::Ok`).
    Ok(u64),
    /// VMX instruction failed (`VMfail*`); the VM-instruction error
    /// number.
    VmFail(u32),
    /// A fault was injected into L1 (`#GP`, `#UD`, …).
    Fault(&'static str),
    /// A nested entry succeeded.
    L2Entered {
        /// Whether the entered L2 can make progress.
        runnable: bool,
    },
    /// A nested entry failed with an entry-failure exit (raw encoded
    /// reason).
    EntryFailed(u32),
    /// A runtime exit was reflected to L1 (raw encoded reason).
    Reflected(u32),
    /// The host died at this point; the stream ends here.
    HostDead,
}

impl ObsResult {
    fn of_l1(result: &L1Result) -> ObsResult {
        match result {
            L1Result::Ok(v) => ObsResult::Ok(*v),
            L1Result::VmFail(e) => ObsResult::VmFail(*e as u32),
            L1Result::Fault(name) => ObsResult::Fault(name),
            L1Result::L2Entered { runnable } => ObsResult::L2Entered {
                runnable: *runnable,
            },
            L1Result::L2EntryFailed { reason } => ObsResult::EntryFailed(*reason),
            L1Result::HostDead => ObsResult::HostDead,
        }
    }

    /// Filename-safe signature fragment (`[a-z0-9]` only) used in
    /// divergence bug ids.
    pub fn sig(&self) -> String {
        match self {
            ObsResult::Ok(v) => format!("ok{v:x}"),
            ObsResult::VmFail(e) => format!("fail{e:x}"),
            ObsResult::Fault(name) => {
                format!("flt{}", name.trim_start_matches('#').to_ascii_lowercase())
            }
            ObsResult::L2Entered { runnable: true } => "l2run".into(),
            ObsResult::L2Entered { runnable: false } => "l2stall".into(),
            ObsResult::EntryFailed(r) => format!("efail{r:x}"),
            ObsResult::Reflected(r) => format!("rfl{r:x}"),
            ObsResult::HostDead => "dead".into(),
        }
    }
}

impl std::fmt::Display for ObsResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsResult::Ok(v) => write!(f, "ok({v:#x})"),
            ObsResult::VmFail(e) => write!(f, "vmfail({e})"),
            ObsResult::Fault(name) => write!(f, "fault({name})"),
            ObsResult::L2Entered { runnable } => write!(f, "l2-entered(runnable={runnable})"),
            ObsResult::EntryFailed(r) => write!(f, "entry-failed({r:#x})"),
            ObsResult::Reflected(r) => write!(f, "reflected({r:#x})"),
            ObsResult::HostDead => write!(f, "host-dead"),
        }
    }
}

/// The canonical record of one execution on one backend: the
/// L1-visible event stream plus the final guest-visible state. The
/// buffer is reusable ([`ExecObservation::clear`]) so the steady-state
/// differential loop allocates nothing once the event vectors have
/// grown to their working size.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecObservation {
    /// L1-visible events in execution order.
    pub events: Vec<ObsResult>,
    /// Guest-visible architectural state after the run.
    pub final_state: GuestObservation,
    /// Whether the sanitizers fired or the host died — such executions
    /// are exempt from diffing (the sanitizer oracle owns them).
    pub crashed: bool,
}

impl ExecObservation {
    /// Resets the observation for the next execution, keeping the
    /// event buffer's capacity.
    pub fn clear(&mut self) {
        self.events.clear();
        self.final_state = GuestObservation::default();
        self.crashed = false;
    }
}

impl ExecObserver for ExecObservation {
    fn on_init_step(&mut self, result: &L1Result) {
        self.events.push(ObsResult::of_l1(result));
    }

    fn on_l2_result(&mut self, result: &L2Result) {
        match result {
            L2Result::ReflectedToL1(reason) => self.events.push(ObsResult::Reflected(*reason)),
            L2Result::HostDead => self.events.push(ObsResult::HostDead),
            // NoExit / HandledByL0 / NoGuest are L0 policy, not
            // L1-visible architecture: recording them would turn
            // legitimate L0 design differences into divergences.
            L2Result::NoExit | L2Result::HandledByL0 | L2Result::NoGuest => {}
        }
    }

    fn on_l1_action(&mut self, result: &L1Result) {
        self.events.push(ObsResult::of_l1(result));
    }
}

/// Where two observations first disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceSite {
    /// The event streams disagree at `index`.
    Event {
        /// Position in the event stream (not part of the signature).
        index: usize,
        /// First backend's event.
        a: ObsResult,
        /// Second backend's event.
        b: ObsResult,
    },
    /// One event stream is a strict prefix of the other.
    SeqLen {
        /// First backend's stream length.
        a: usize,
        /// Second backend's stream length.
        b: usize,
    },
    /// Event streams match; a final guest-visible state field differs.
    State {
        /// Name of the differing [`GuestObservation`] field.
        field: &'static str,
        /// First backend's value.
        a: u64,
        /// Second backend's value.
        b: u64,
    },
}

impl DivergenceSite {
    /// The deduplication tag: what diverged, not where. Event sites
    /// drop the step index so one root cause surfacing at different
    /// positions collapses into one bug id.
    pub fn tag(&self) -> String {
        match self {
            DivergenceSite::Event { a, b, .. } => format!("{}v{}", a.sig(), b.sig()),
            DivergenceSite::SeqLen { a, b } => format!("len{a}v{b}"),
            DivergenceSite::State { field, .. } => format!("f_{field}"),
        }
    }

    /// Human-readable description for finding messages and `corpus
    /// repro` output.
    pub fn describe(&self, a_name: &str, b_name: &str) -> String {
        match self {
            DivergenceSite::Event { index, a, b } => {
                format!("{a_name} vs {b_name} at event {index}: {a} != {b}")
            }
            DivergenceSite::SeqLen { a, b } => {
                format!("{a_name} vs {b_name}: event streams end at {a} != {b} events")
            }
            DivergenceSite::State { field, a, b } => {
                format!("{a_name} vs {b_name}: final {field} differs: {a:#x} != {b:#x}")
            }
        }
    }
}

/// Diffs two canonical observations; `None` when they are equivalent.
/// Only the *first* divergent site is reported: after a control-flow
/// split (one backend in L2, the other back in L1) later events are
/// not comparable, and the final state inherits the split.
pub fn diff_observations(a: &ExecObservation, b: &ExecObservation) -> Option<DivergenceSite> {
    for (index, (ra, rb)) in a.events.iter().zip(&b.events).enumerate() {
        if ra != rb {
            return Some(DivergenceSite::Event {
                index,
                a: *ra,
                b: *rb,
            });
        }
    }
    if a.events.len() != b.events.len() {
        return Some(DivergenceSite::SeqLen {
            a: a.events.len(),
            b: b.events.len(),
        });
    }
    let (fa, fb) = (&a.final_state, &b.final_state);
    for (field, va, vb) in [
        ("cr0", fa.cr0, fb.cr0),
        ("cr4", fa.cr4, fb.cr4),
        ("efer", fa.efer, fb.efer),
        ("vmx_on", u64::from(fa.vmx_on), u64::from(fb.vmx_on)),
        ("current_vmptr", fa.current_vmptr, fb.current_vmptr),
        ("in_l2", u64::from(fa.in_l2), u64::from(fb.in_l2)),
        ("vmcs12_digest", fa.vmcs12_digest, fb.vmcs12_digest),
    ] {
        if va != vb {
            return Some(DivergenceSite::State {
                field,
                a: va,
                b: vb,
            });
        }
    }
    None
}

/// One intentional-quirk rule of the conformance allowlist: a named,
/// documented predicate over `(backend pair, divergence site)`.
/// Divergences a rule matches are counted (`allowed`) but not
/// reported. The table is deliberately explicit — every entry is a
/// *decision* that a behavioral difference is in-spec, reviewable in
/// one place.
pub struct AllowRule {
    /// Short rule name (shown in stats and docs).
    pub name: &'static str,
    /// Why the divergence is intentional.
    pub why: &'static str,
    matches: fn(&str, &str, &DivergenceSite) -> bool,
}

impl AllowRule {
    /// Whether this rule covers a divergence between backends `a` and
    /// `b` at `site` (the site's `a`/`b` sides correspond to the names
    /// in order; rules check both orientations themselves where the
    /// quirk is directional).
    pub fn matches(&self, a: &str, b: &str, site: &DivergenceSite) -> bool {
        (self.matches)(a, b, site)
    }
}

impl std::fmt::Debug for AllowRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AllowRule")
            .field("name", &self.name)
            .finish()
    }
}

fn event_pair(site: &DivergenceSite) -> Option<(ObsResult, ObsResult)> {
    match site {
        DivergenceSite::Event { a, b, .. } => Some((*a, *b)),
        _ => None,
    }
}

/// The intentional backend quirks the conformance suite tolerates.
/// Everything else that diverges is a finding.
pub static ALLOWLIST: &[AllowRule] = &[
    AllowRule {
        name: "l0-entry-hardening",
        why: "bare metal completes VM entries that software L0s refuse by \
              policy: entry into a waiting activity state (the guest is \
              entered but stalled) and entries covered by software-only \
              consistency checks such as KVM's CVE-2023-30456 fix (IA-32e \
              mode without PAE, which the hardware quirk tolerates). \
              Refusing an entry bare metal would take is fail-safe, so \
              only the golden side completing the entry is allowed; a \
              backend *entering* where bare metal refuses stays a finding.",
        matches: |a, b, site| match event_pair(site) {
            Some((ObsResult::L2Entered { .. }, ObsResult::EntryFailed(_))) => a == "golden",
            Some((ObsResult::EntryFailed(_), ObsResult::L2Entered { .. })) => b == "golden",
            _ => false,
        },
    },
    AllowRule {
        name: "entry-check-order",
        why: "when a VM entry violates several classes of checks at \
              once, the reported entry-failure reason reflects whichever \
              check a backend runs first (vkvm rejects bad activity \
              states as invalid-guest-state before walking the MSR-load \
              list; bare metal orders them the other way). Either way \
              the entry is refused and L1 sees an entry-failure exit.",
        matches: |_a, _b, site| {
            matches!(
                event_pair(site),
                Some((ObsResult::EntryFailed(_), ObsResult::EntryFailed(_)))
            )
        },
    },
];

/// The first allowlist rule covering a divergence, if any.
pub fn allowed_by(a: &str, b: &str, site: &DivergenceSite) -> Option<&'static AllowRule> {
    ALLOWLIST.iter().find(|rule| rule.matches(a, b, site))
}

/// Per-campaign differential-oracle counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DivergenceStats {
    /// Executions replayed across the backend set and diffed.
    pub execs_compared: u64,
    /// Divergent (pair, execution) observations that were reported
    /// (triage dedups them into unique findings).
    pub divergences: u64,
    /// Divergences covered by the [`ALLOWLIST`].
    pub allowed: u64,
    /// Pair comparisons skipped because one side crashed or died (the
    /// sanitizer oracle owns those executions).
    pub crash_skipped: u64,
}

/// The N-way replay engine behind the differential oracle: one
/// snapshot-backed [`Agent`] per configured backend, a reusable
/// [`ExecObservation`] per backend, and its own divergence
/// [`CrashTriage`].
///
/// Every backend replays the same input sequence, so their validators
/// learn the same corrections in lockstep and each backend receives
/// the *same* generated harness VM per input — observations differ
/// only where backend behavior differs.
pub struct DifferentialRunner {
    names: Vec<String>,
    agents: Vec<Agent>,
    obs: Vec<ExecObservation>,
    triage: CrashTriage,
    stats: DivergenceStats,
}

impl DifferentialRunner {
    /// A runner over `backends` (at least two; see [`backend_factory`]
    /// for the known names).
    ///
    /// # Panics
    ///
    /// Panics on fewer than two backends or an unknown backend name —
    /// both are configuration errors the CLI rejects up front.
    pub fn new(
        backends: &[String],
        vendor: CpuVendor,
        mask: ComponentMask,
        engine: EngineMode,
    ) -> Self {
        assert!(
            backends.len() >= 2,
            "differential oracle needs at least two backends, got {backends:?}"
        );
        let agents = backends
            .iter()
            .map(|name| {
                let factory = backend_factory(name)
                    .unwrap_or_else(|| panic!("unknown differential backend {name:?}"));
                Agent::with_engine(factory, vendor, mask, engine)
            })
            .collect();
        DifferentialRunner {
            names: backends.to_vec(),
            agents,
            obs: vec![ExecObservation::default(); backends.len()],
            triage: CrashTriage::new(),
            stats: DivergenceStats::default(),
        }
    }

    /// Enables prefix-cached execution on every backend agent. The
    /// 1+N replay structure of the oracle makes the trie especially
    /// effective: each backend replays the *same* input, so the shared
    /// scenario prefix is hot on every agent after the first exec.
    pub fn with_prefix_cache(mut self, enabled: bool) -> Self {
        self.agents = self
            .agents
            .into_iter()
            .map(|a| a.with_prefix_cache(enabled))
            .collect();
        self
    }

    /// Sets the booted-image cache capacity of every backend agent.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.agents = self
            .agents
            .into_iter()
            .map(|a| a.with_cache_capacity(capacity))
            .collect();
        self
    }

    /// Sets the prefix trie's byte budget on every backend agent.
    pub fn with_prefix_budget(mut self, bytes: usize) -> Self {
        self.agents = self
            .agents
            .into_iter()
            .map(|a| a.with_prefix_budget(bytes))
            .collect();
        self
    }

    /// Selects the prefix trie's snapshot store on every backend agent.
    pub fn with_prefix_store(mut self, mode: crate::engine::PrefixStoreMode) -> Self {
        self.agents = self
            .agents
            .into_iter()
            .map(|a| a.with_prefix_store(mode))
            .collect();
        self
    }

    /// The configured backend names, in order.
    pub fn backends(&self) -> &[String] {
        &self.names
    }

    /// The oracle's counters so far.
    pub fn stats(&self) -> DivergenceStats {
        self.stats
    }

    /// The divergence findings so far (unique by signature, discovery
    /// order).
    pub fn triage(&self) -> &CrashTriage {
        &self.triage
    }

    /// Total backend executions performed (the replay cost the
    /// `diff_oracle` bench reports as overhead).
    pub fn backend_execs(&self) -> u64 {
        self.agents.iter().map(Agent::execs).sum()
    }

    /// Fast-forwards every backend's validator to its converged state
    /// (see [`Agent::converge_validator`]) — the replay context
    /// [`DiffOracle`] uses for late-campaign findings.
    pub fn converge_validators(&mut self) {
        for agent in &mut self.agents {
            agent.converge_validator();
        }
    }

    /// The last recorded observation of backend `name`, for
    /// inspection in tests and `corpus repro` reporting.
    pub fn observation(&self, name: &str) -> Option<&ExecObservation> {
        let i = self.names.iter().position(|n| n == name)?;
        Some(&self.obs[i])
    }

    /// Replays `input` on every backend, records the canonical
    /// observations, and diffs them pairwise. New divergences are
    /// recorded as [`CrashKind::Divergence`] findings under `exec` (the
    /// campaign's execution index).
    pub fn observe_exec(&mut self, input: &FuzzInput, exec: u64) {
        self.stats.execs_compared += 1;
        for (agent, ob) in self.agents.iter_mut().zip(&mut self.obs) {
            ob.clear();
            let crashed = agent.run_iteration_with(input, ob).feedback.crashed;
            ob.final_state = agent.observe_guest();
            ob.crashed = crashed || agent.hv().health().dead;
        }
        let mut shared: Option<Arc<FuzzInput>> = None;
        for i in 0..self.obs.len() {
            for j in i + 1..self.obs.len() {
                if self.obs[i].crashed || self.obs[j].crashed {
                    self.stats.crash_skipped += 1;
                    continue;
                }
                let Some(site) = diff_observations(&self.obs[i], &self.obs[j]) else {
                    continue;
                };
                let (a, b) = (&self.names[i], &self.names[j]);
                if allowed_by(a, b, &site).is_some() {
                    self.stats.allowed += 1;
                    continue;
                }
                self.stats.divergences += 1;
                let bug_id = format!("diff_{a}+{b}_{}", site.tag());
                if self.triage.contains(&bug_id) {
                    continue;
                }
                let input = shared
                    .get_or_insert_with(|| Arc::new(input.clone()))
                    .clone();
                self.triage.record(BugFind {
                    bug_id,
                    kind: CrashKind::Divergence,
                    message: site.describe(a, b),
                    exec,
                    input,
                });
            }
        }
    }
}

/// Parses a divergence bug id (`diff_{a}+{b}_{tag}`) into its backend
/// pair. Backend names never contain `_` or `+`, so the pair is the
/// segment between the `diff_` prefix and the next `_`. Used by
/// `corpus repro` to recover the recorded pair from a saved crash
/// filename.
pub fn parse_divergence_pair(bug_id: &str) -> Option<(String, String)> {
    let rest = bug_id.split("diff_").nth(1)?;
    let pair = rest.split('_').next()?;
    let (a, b) = pair.split_once('+')?;
    if a.is_empty() || b.is_empty() {
        return None;
    }
    Some((a.to_string(), b.to_string()))
}

/// Replay/minimization oracle for divergence findings — the
/// differential twin of [`crate::triage::ReplayOracle`].
///
/// Replays run against *fresh* runners, trying the cold validator
/// context first and the converged one second (saved findings depend
/// on which oracle corrections were learned at discovery time).
/// Minimization fixes the reproducing context once and only accepts
/// truncations under which the exact divergence signature — the bug
/// id — still fires, so the minimized reproducer stays *divergent*,
/// not merely anomalous.
pub struct DiffOracle {
    backends: Vec<String>,
    vendor: CpuVendor,
    mask: ComponentMask,
    engine: EngineMode,
    prefix_cache: bool,
    cache_capacity: usize,
    prefix_budget: usize,
}

impl DiffOracle {
    /// An oracle replaying across `backends` with the given agent
    /// configuration (backend names as for [`backend_factory`]).
    pub fn new(
        backends: &[String],
        vendor: CpuVendor,
        mask: ComponentMask,
        engine: EngineMode,
    ) -> Self {
        DiffOracle {
            backends: backends.to_vec(),
            vendor,
            mask,
            engine,
            prefix_cache: false,
            cache_capacity: crate::engine::DEFAULT_CACHE_CAPACITY,
            prefix_budget: crate::engine::DEFAULT_PREFIX_BUDGET,
        }
    }

    /// Routes every replay through the prefix-cached execution path,
    /// matching the engine configuration the campaign ran with
    /// (divergence signatures reproduce bit-identically either way).
    pub fn with_prefix_cache(mut self, enabled: bool) -> Self {
        self.prefix_cache = enabled;
        self
    }

    /// Sets the booted-image cache capacity of the replay agents.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the prefix trie's byte budget of the replay agents.
    pub fn with_prefix_budget(mut self, bytes: usize) -> Self {
        self.prefix_budget = bytes;
        self
    }

    /// Replays `input` from clean runners; returns the divergence
    /// findings it triggers, in detection order.
    pub fn replay(&self, input: &FuzzInput) -> Vec<(String, CrashKind, String)> {
        for converged in [false, true] {
            let mut runner = self.runner(converged);
            runner.observe_exec(input, 0);
            if !runner.triage().is_empty() {
                return runner
                    .triage()
                    .iter()
                    .map(|f| (f.bug_id.clone(), f.kind, f.message.clone()))
                    .collect();
            }
        }
        Vec::new()
    }

    /// `true` when a clean replay of `input` (cold or converged
    /// validators) reproduces the divergence signature `bug_id`.
    pub fn reproduces(&self, bug_id: &str, input: &FuzzInput) -> bool {
        [false, true]
            .iter()
            .any(|&converged| self.reproduces_in(bug_id, input, converged))
    }

    /// [`minimize_input`] against this oracle for `bug_id`: every
    /// truncation candidate must reproduce the *same signature* in the
    /// context fixed from the original input.
    pub fn minimize(&self, bug_id: &str, input: &FuzzInput) -> FuzzInput {
        let Some(converged) = [false, true]
            .into_iter()
            .find(|&c| self.reproduces_in(bug_id, input, c))
        else {
            return input.clone();
        };
        minimize_input(input, |candidate| {
            self.reproduces_in(bug_id, candidate, converged)
        })
    }

    fn reproduces_in(&self, bug_id: &str, input: &FuzzInput, converged: bool) -> bool {
        let mut runner = self.runner(converged);
        runner.observe_exec(input, 0);
        runner.triage().contains(bug_id)
    }

    fn runner(&self, converged: bool) -> DifferentialRunner {
        let mut runner =
            DifferentialRunner::new(&self.backends, self.vendor, self.mask, self.engine)
                .with_prefix_cache(self.prefix_cache)
                .with_cache_capacity(self.cache_capacity)
                .with_prefix_budget(self.prefix_budget);
        if converged {
            runner.converge_validators();
        }
        runner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_mode_parses_its_own_names() {
        for mode in [OracleMode::Sanitizer, OracleMode::Differential] {
            assert_eq!(OracleMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(OracleMode::parse("hybrid"), None);
    }

    #[test]
    fn sigs_are_filename_safe() {
        let all = [
            ObsResult::Ok(0xdead),
            ObsResult::VmFail(7),
            ObsResult::Fault("#GP"),
            ObsResult::L2Entered { runnable: true },
            ObsResult::L2Entered { runnable: false },
            ObsResult::EntryFailed(0x8000_0021),
            ObsResult::Reflected(0x28),
            ObsResult::HostDead,
        ];
        let sigs: Vec<String> = all.iter().map(ObsResult::sig).collect();
        for sig in &sigs {
            assert!(
                sig.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                "sig {sig:?} is not filename-safe"
            );
        }
        // Distinct results must have distinct signatures — the bug id
        // is the deduplication key.
        let mut unique = sigs.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), sigs.len(), "sig collision in {sigs:?}");
    }

    #[test]
    fn event_tag_drops_the_index() {
        let early = DivergenceSite::Event {
            index: 3,
            a: ObsResult::Reflected(0x28),
            b: ObsResult::Reflected(0xc),
        };
        let late = DivergenceSite::Event {
            index: 40,
            a: ObsResult::Reflected(0x28),
            b: ObsResult::Reflected(0xc),
        };
        assert_eq!(early.tag(), late.tag());
        assert_eq!(early.tag(), "rfl28vrflc");
    }

    fn obs(events: &[ObsResult]) -> ExecObservation {
        ExecObservation {
            events: events.to_vec(),
            ..ExecObservation::default()
        }
    }

    #[test]
    fn diff_reports_first_divergent_site() {
        let a = obs(&[ObsResult::Ok(1), ObsResult::Reflected(0xc)]);
        let b = obs(&[ObsResult::Ok(1), ObsResult::Reflected(0x28)]);
        assert_eq!(
            diff_observations(&a, &b),
            Some(DivergenceSite::Event {
                index: 1,
                a: ObsResult::Reflected(0xc),
                b: ObsResult::Reflected(0x28),
            })
        );
        assert_eq!(diff_observations(&a, &a), None);
    }

    #[test]
    fn diff_reports_length_then_state() {
        let short = obs(&[ObsResult::Ok(1)]);
        let long = obs(&[ObsResult::Ok(1), ObsResult::Ok(2)]);
        assert_eq!(
            diff_observations(&short, &long),
            Some(DivergenceSite::SeqLen { a: 1, b: 2 })
        );
        let mut state = short.clone();
        state.final_state.cr4 = 0x2000;
        assert_eq!(
            diff_observations(&short, &state),
            Some(DivergenceSite::State {
                field: "cr4",
                a: 0,
                b: 0x2000,
            })
        );
    }

    #[test]
    fn entry_hardening_rule_is_directional() {
        let golden_entered = DivergenceSite::Event {
            index: 0,
            a: ObsResult::L2Entered { runnable: false },
            b: ObsResult::EntryFailed(0x8000_0021),
        };
        // golden completing the entry is the allowed quirk...
        assert_eq!(
            allowed_by("golden", "vkvm", &golden_entered).map(|r| r.name),
            Some("l0-entry-hardening")
        );
        // ...a software backend entering where bare metal refuses is a
        // finding.
        assert!(allowed_by("vkvm", "golden", &golden_entered).is_none());
    }

    #[test]
    fn entry_check_order_rule_needs_both_sides_failed() {
        let both_failed = DivergenceSite::Event {
            index: 0,
            a: ObsResult::EntryFailed(0x8000_0021),
            b: ObsResult::EntryFailed(0x8000_0022),
        };
        assert_eq!(
            allowed_by("vkvm", "golden", &both_failed).map(|r| r.name),
            Some("entry-check-order")
        );
        let reflected = DivergenceSite::Event {
            index: 0,
            a: ObsResult::Reflected(0x28),
            b: ObsResult::Reflected(0xc),
        };
        assert!(allowed_by("vkvm", "golden", &reflected).is_none());
    }

    #[test]
    fn divergence_pair_roundtrips_through_the_bug_id() {
        let site = DivergenceSite::Event {
            index: 16,
            a: ObsResult::Reflected(0x28),
            b: ObsResult::Reflected(0xc),
        };
        let bug_id = format!("diff_{SEEDED_HLT_BACKEND}+golden_{}", site.tag());
        assert_eq!(
            parse_divergence_pair(&bug_id),
            Some((SEEDED_HLT_BACKEND.to_string(), "golden".to_string()))
        );
        // The saved-crash filename embeds the bug id; the pair must
        // survive the wrapping.
        let path = format!("out/crash-s007-exec000298-{bug_id}.bin");
        assert_eq!(
            parse_divergence_pair(&path),
            Some((SEEDED_HLT_BACKEND.to_string(), "golden".to_string()))
        );
        assert_eq!(parse_divergence_pair("wdt_hang_l1"), None);
        assert_eq!(parse_divergence_pair("diff_nopair"), None);
    }

    #[test]
    fn unknown_backend_names_have_no_factory() {
        for name in ["vkvm", "vxen", "vvbox", "golden", SEEDED_HLT_BACKEND] {
            assert!(backend_factory(name).is_some(), "{name} must resolve");
        }
        assert!(backend_factory("qemu").is_none());
    }
}
