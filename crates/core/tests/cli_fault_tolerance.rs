//! Process-spawn coverage for the fault-tolerance CLI surface:
//!
//! - every invalid flag combination exits 2 with a pointed diagnostic
//!   (never a silent partial run);
//! - a faulty campaign reports its fault counters;
//! - `--checkpoint-dir` + kill + `--resume-checkpoint` converges to
//!   the exact stdout of the uninterrupted run.

use std::process::{Command, Output};

fn necofuzz(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_necofuzz"))
        .args(args)
        .output()
        .expect("spawn necofuzz")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn invalid_fault_tolerance_flags_exit_2() {
    // (args, needle expected somewhere in stderr)
    let cases: &[(&[&str], &str)] = &[
        (&["--watchdog-fuel", "0"], "--watchdog-fuel"),
        (&["--fault-plan", "3:1.5"], "[0, 1]"),
        (&["--fault-plan", "3:-0.1"], "[0, 1]"),
        (&["--fault-plan", "nonsense"], "usage"),
        (&["--fault-plan", "3:notarate"], "usage"),
        (&["--checkpoint-interval", "2"], "--checkpoint-dir"),
        (
            &["--resume-checkpoint", "/tmp/x", "--runs", "2"],
            "exactly one campaign",
        ),
        (
            &["--checkpoint-dir", "/tmp/x", "--runs", "3"],
            "exactly one campaign",
        ),
        (
            &["--resume-checkpoint", "/tmp/x", "--resume-corpus", "/tmp/y"],
            "--resume-corpus",
        ),
        (
            &["--checkpoint-dir", "/tmp/x", "--sync-interval", "1"],
            "--sync-interval",
        ),
        (
            &["--checkpoint-dir", "/tmp/x", "--oracle", "differential"],
            "differential",
        ),
        (
            &["--checkpoint-dir", "/tmp/x", "--bench-out", "/tmp/b.json"],
            "--bench-out",
        ),
        (
            &["--resume-checkpoint", "/nonexistent/nf-checkpoint"],
            "--resume-checkpoint",
        ),
    ];
    for (args, needle) in cases {
        let out = necofuzz(args);
        let stderr = stderr_of(&out);
        assert_eq!(
            out.status.code(),
            Some(2),
            "necofuzz {args:?} must exit 2, got {:?}\nstderr: {stderr}",
            out.status.code()
        );
        assert!(
            stderr.to_lowercase().contains(&needle.to_lowercase()),
            "necofuzz {args:?} stderr must mention {needle:?}: {stderr}"
        );
    }
}

#[test]
fn fault_plan_runs_report_their_counters() {
    let out = necofuzz(&[
        "--hours",
        "2",
        "--execs-per-hour",
        "60",
        "--guided",
        "--seed",
        "5",
        "--fault-plan",
        "9:0.05",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("faults="),
        "banner must show the armed plan: {stdout}"
    );
    assert!(
        stdout.contains("faults:") && stdout.contains("reaped by the watchdog"),
        "fault counters must be reported: {stdout}"
    );
    // Injected hangs surface as findings, so the run exits 1.
    assert_eq!(out.status.code(), Some(1), "hung-exec findings exit 1");
}

#[test]
fn checkpoint_kill_resume_converges_to_the_uninterrupted_stdout() {
    let dir = std::env::temp_dir().join(format!("nf-cli-ckpt-{}", std::process::id()));
    let dir = dir.to_str().expect("utf-8 temp dir");
    std::fs::remove_dir_all(dir).ok();

    let common = [
        "--execs-per-hour",
        "60",
        "--guided",
        "--seed",
        "5",
        "--fault-plan",
        "9:0.05",
    ];

    // "Kill" after 2 of 3 hours: run a 2-hour campaign that checkpoints
    // every hour — its final checkpoint is exactly what a SIGKILL at
    // the hour-2 boundary of the 3-hour run would have left behind.
    let mut partial: Vec<&str> = vec!["--hours", "2", "--checkpoint-dir", dir];
    partial.extend_from_slice(&common);
    let out = necofuzz(&partial);
    assert_eq!(out.status.code(), Some(1), "{}", stderr_of(&out));

    let mut resumed: Vec<&str> = vec!["--hours", "3", "--resume-checkpoint", dir];
    resumed.extend_from_slice(&common);
    let resumed = necofuzz(&resumed);

    let mut straight: Vec<&str> = vec!["--hours", "3"];
    straight.extend_from_slice(&common);
    let straight = necofuzz(&straight);
    std::fs::remove_dir_all(dir).ok();

    assert_eq!(resumed.status.code(), straight.status.code());
    let tail = |out: &Output| -> String {
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        // Skip each run's banner line (they legitimately differ); all
        // result reporting after it must match byte for byte.
        match text.split_once('\n') {
            Some((_, rest)) => rest.to_string(),
            None => text,
        }
    };
    assert_eq!(
        tail(&resumed),
        tail(&straight),
        "resumed run must report exactly what the uninterrupted run does"
    );
}
