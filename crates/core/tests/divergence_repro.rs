//! Divergence findings survive the whole reproduction pipeline: the
//! planted misvirtualization is found by diffing (and only by
//! diffing — every sanitizer stays silent), its reproducer minimizes
//! under the signature-preserving oracle without flipping to a
//! different divergence, and `necofuzz corpus repro` recovers the
//! recorded backend pair from the saved crash file and replays the
//! first-divergent exit.

use nf_fuzz::FuzzInput;
use nf_x86::CpuVendor;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use necofuzz::differential::{DiffOracle, DifferentialRunner, SEEDED_HLT_BACKEND};
use necofuzz::triage::minimize_input;
use necofuzz::{backend_factory, ComponentMask, EngineMode, ReplayOracle};

/// The planted bug's divergence signature: the buggy vkvm reflects
/// PAUSE (0x28) where bare metal reflects HLT (0xc).
const SEEDED_SIGNATURE: &str = "diff_vkvm-hltbug+golden_rfl28vrflc";

fn seeded_pair() -> Vec<String> {
    vec![SEEDED_HLT_BACKEND.to_string(), "golden".to_string()]
}

/// Finds the planted HLT-misreport divergence by random search: the
/// bug needs an input that reaches L2 with HLT exiting armed and
/// executes HLT there, which a few hundred random inputs reliably
/// contain. Some divergent inputs only fire against the exact oracle
/// corrections the search runner's validators had learned by that
/// point, so the search keeps going until one reproduces from a clean
/// context — the contract every saved finding must meet.
fn find_seeded_divergence() -> (String, FuzzInput) {
    let mut runner = DifferentialRunner::new(
        &seeded_pair(),
        CpuVendor::Intel,
        ComponentMask::ALL,
        EngineMode::Snapshot,
    );
    let oracle = DiffOracle::new(
        &seeded_pair(),
        CpuVendor::Intel,
        ComponentMask::ALL,
        EngineMode::Snapshot,
    );
    let mut rng = SmallRng::seed_from_u64(7);
    let mut input = FuzzInput::zeroed();
    for exec in 0..2000u64 {
        input.fill_random(&mut rng);
        // `divergences`, not the triage length: the triage dedups by
        // signature, and later replayable hits of an already-recorded
        // signature are exactly what this search is after.
        let before = runner.stats().divergences;
        runner.observe_exec(&input, exec);
        if runner.stats().divergences > before && oracle.reproduces(SEEDED_SIGNATURE, &input) {
            return (SEEDED_SIGNATURE.to_string(), input.clone());
        }
    }
    panic!("no clean-context seeded divergence within 2000 random inputs");
}

#[test]
fn seeded_bug_is_found_by_diffing_and_missed_by_sanitizers() {
    let (bug_id, input) = find_seeded_divergence();
    assert_eq!(bug_id, SEEDED_SIGNATURE);

    // The differential oracle replays it from clean runners.
    let oracle = DiffOracle::new(
        &seeded_pair(),
        CpuVendor::Intel,
        ComponentMask::ALL,
        EngineMode::Snapshot,
    );
    let replayed = oracle.replay(&input);
    assert!(
        replayed.iter().any(|(id, _, _)| id == SEEDED_SIGNATURE),
        "divergence replay lost the signature: {replayed:?}"
    );

    // The sanitizer oracle cannot see the planted bug: replaying the
    // same input on the buggy backend finds exactly what it finds on
    // clean vkvm — the misreported exit reason leaves the host
    // healthy, so the lie is only visible against a second backend.
    let replay_sanitizers = |backend: &str| {
        ReplayOracle::new(
            backend_factory(backend).expect("known backend"),
            CpuVendor::Intel,
            ComponentMask::ALL,
            EngineMode::Snapshot,
        )
        .replay(&input)
    };
    let buggy = replay_sanitizers(SEEDED_HLT_BACKEND);
    assert_eq!(
        buggy,
        replay_sanitizers("vkvm"),
        "the planted bug must add nothing the sanitizer oracle can see"
    );
    assert!(
        !buggy.iter().any(|(id, _, _)| id == SEEDED_SIGNATURE),
        "sanitizers cannot name the divergence"
    );
}

#[test]
fn minimization_preserves_the_divergence_signature() {
    let (bug_id, input) = find_seeded_divergence();
    let oracle = DiffOracle::new(
        &seeded_pair(),
        CpuVendor::Intel,
        ComponentMask::ALL,
        EngineMode::Snapshot,
    );
    let minimized = oracle.minimize(&bug_id, &input);
    let nonzero = |input: &FuzzInput| input.bytes.iter().filter(|&&b| b != 0).count();
    assert!(
        nonzero(&minimized) < nonzero(&input),
        "minimization made no progress: {} -> {}",
        nonzero(&input),
        nonzero(&minimized)
    );
    assert!(
        oracle.reproduces(&bug_id, &minimized),
        "minimized reproducer no longer diverges with the original signature"
    );
}

#[test]
fn signature_check_rejects_truncations_that_flip_the_divergent_exit() {
    // A crafted scenario whose truncation still diverges — but
    // differently: byte 0 selects which exit the backends disagree on,
    // so zeroing it keeps the input divergent while flipping the
    // signature. A naive "still diverges" minimizer (the plain crash
    // minimizer's condition) happily zeroes it; the signature check
    // `DiffOracle::minimize` applies must keep it.
    let mut input = FuzzInput::zeroed();
    input.bytes[0] = 5;
    input.bytes[100] = 9;
    let signature = |input: &FuzzInput| {
        if input.bytes[0] != 0 {
            "rfl1vrfl2"
        } else {
            "rfl3vrfl4"
        }
    };
    let original = signature(&input);

    let naive = minimize_input(&input, |_| true); // "any divergence counts"
    assert_ne!(
        signature(&naive),
        original,
        "this scenario must flip under naive truncation to be a regression test"
    );

    let kept = minimize_input(&input, |candidate| signature(candidate) == original);
    assert_eq!(signature(&kept), original);
    assert_ne!(kept.bytes[0], 0, "the signature-carrying byte must survive");
    assert_eq!(
        kept.bytes[100], 0,
        "bytes the signature ignores must be dropped"
    );
}

#[test]
fn corpus_repro_cli_replays_divergence_findings_across_the_recorded_pair() {
    let (bug_id, input) = find_seeded_divergence();

    // Save the crash file exactly as a campaign would (`save_crashes`
    // embeds the bug id — and thus the backend pair — in the name).
    let dir = std::env::temp_dir().join(format!("nf_divergence_repro_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("crash-s007-exec000298-{bug_id}.bin"));
    std::fs::write(&path, &input.bytes).expect("write crash input");

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_necofuzz"))
        .args(["corpus", "repro", path.to_str().expect("utf-8 path")])
        .output()
        .expect("run necofuzz corpus repro");
    let stdout = String::from_utf8_lossy(&output.stdout);
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        output.status.success(),
        "corpus repro exited {:?}\nstdout: {stdout}\nstderr: {}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    // It recovered the pair from the filename, replayed differentially,
    // and printed the first-divergent exit.
    assert!(
        stdout.contains("replaying across vkvm-hltbug+golden"),
        "missing pair detection: {stdout}"
    );
    assert!(
        stdout.contains(SEEDED_SIGNATURE),
        "missing signature: {stdout}"
    );
    assert!(
        stdout.contains("reflected(0x28) != reflected(0xc)"),
        "missing first-divergent exit diff: {stdout}"
    );
}
