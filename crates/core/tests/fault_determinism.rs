//! Property suites for the fault-injection and checkpoint layers:
//!
//! - a campaign under a fault plan is a pure function of (config,
//!   plan): the same seed and plan reproduce the whole
//!   `CampaignResult` — fault counters, alarms, findings — bit for
//!   bit;
//! - a zero-rate plan is indistinguishable from no plan at all (the
//!   injection seam itself costs nothing semantically);
//! - checkpoint/resume round-trips across the backend × vendor ×
//!   strategy grid: killing a campaign at an arbitrary hour and
//!   resuming from its checkpoint converges to the exact result of
//!   the uninterrupted run.

use necofuzz::campaign::{run_campaign, Campaign, CampaignConfig};
use nf_fuzz::{Mode, MutationStrategy};
use nf_hv::{FaultPlan, HvConfig, L0Hypervisor, Vkvm, Vvbox, Vxen};
use nf_x86::CpuVendor;
use proptest::prelude::*;

/// The three in-tree backends, indexable by a proptest-drawn pick.
fn factory(backend: usize) -> Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>> {
    match backend {
        0 => Box::new(|c| Box::new(Vkvm::new(c))),
        1 => Box::new(|c| Box::new(Vxen::new(c))),
        _ => Box::new(|c| Box::new(Vvbox::new(c))),
    }
}

fn temp_dir(tag: &str, case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("nf-fault-prop-{tag}-{}-{case}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn same_seed_and_plan_reproduce_the_campaign_bit_for_bit(
        seed in 0u64..1 << 32,
        plan_seed in 0u64..1 << 32,
        rate_millis in 0u32..150,
    ) {
        let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 2, seed)
            .with_execs_per_hour(40)
            .with_mode(Mode::Guided)
            .with_fault_plan(FaultPlan::uniform(plan_seed, rate_millis as f64 / 1000.0));
        let first = run_campaign(factory(0), &cfg);
        let second = run_campaign(factory(0), &cfg);
        prop_assert_eq!(first.faults, second.faults);
        prop_assert_eq!(first.alarms, second.alarms);
        prop_assert_eq!(
            first, second,
            "a faulty campaign must still be a pure function of its config"
        );
    }

    #[test]
    fn zero_rate_plan_is_bit_identical_to_no_plan(
        seed in 0u64..1 << 32,
        plan_seed in 0u64..1 << 32,
    ) {
        let base = CampaignConfig::necofuzz(CpuVendor::Intel, 2, seed)
            .with_execs_per_hour(40)
            .with_mode(Mode::Guided);
        let armed = base.clone().with_fault_plan(FaultPlan::uniform(plan_seed, 0.0));
        let bare = run_campaign(factory(0), &base);
        let zeroed = run_campaign(factory(0), &armed);
        prop_assert_eq!(zeroed.faults.hangs, 0);
        prop_assert_eq!(zeroed.faults.deaths, 0);
        prop_assert_eq!(
            bare, zeroed,
            "a zero-rate plan must not perturb the campaign at all"
        );
    }

    #[test]
    fn checkpoint_round_trip_across_backend_vendor_strategy(
        seed in 0u64..1 << 32,
        pick in 0u64..12,
        split in 1u32..3,
    ) {
        let backend = (pick % 3) as usize;
        // vvbox models VT-x only; the other backends alternate vendors.
        let vendor = if backend == 2 || (pick / 3) % 2 == 0 {
            CpuVendor::Intel
        } else {
            CpuVendor::Amd
        };
        let strategy = if (pick / 6) % 2 == 0 {
            MutationStrategy::Havoc
        } else {
            MutationStrategy::Structured
        };
        let cfg = CampaignConfig::necofuzz(vendor, 3, seed)
            .with_execs_per_hour(40)
            .with_mode(Mode::Guided)
            .with_strategy(strategy)
            .with_fault_plan(FaultPlan::uniform(seed ^ 0xfa17, 0.05));

        let baseline = run_campaign(factory(backend), &cfg);

        let dir = temp_dir("roundtrip", seed ^ pick);
        let mut partial = Campaign::new(factory(backend), &cfg);
        partial.set_checkpoint(&dir, 1);
        partial.run_hours(split);
        drop(partial); // the "kill": everything not checkpointed is lost

        let resumed = Campaign::resume_from_checkpoint(factory(backend), &cfg, &dir)
            .expect("resume from checkpoint");
        prop_assert_eq!(resumed.hours_done(), split);
        let result = resumed.into_result();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(
            result, baseline,
            "kill + resume must converge to the uninterrupted result \
             (backend {}, vendor {:?}, strategy {:?})",
            backend, vendor, strategy
        );
    }
}
