//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the subset of the proptest API its property tests use: the
//! [`proptest!`] macro, [`prelude::any`], integer-range strategies,
//! [`collection::vec`], `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. Values are drawn from a deterministic RNG
//! seeded from the test name, so failures reproduce across runs; there
//! is no shrinking — a failing case reports the assertion directly.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic value source handed to strategies.
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// A runner whose stream is a pure function of `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRunner {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// FNV-1a, used to derive a stable per-test seed from the test name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;
}

/// Strategy returned by [`prelude::any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical uniform strategy.
pub trait Arbitrary: Sized {
    /// Draws one uniformly distributed value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRunner};

    /// Strategy producing `Vec`s of a fixed length.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// A strategy for vectors of `len` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            (0..self.len)
                .map(|_| self.element.new_value(runner))
                .collect()
        }
    }
}

pub mod prelude {
    //! The glob-importable API surface.

    pub use super::collection;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use super::{Arbitrary, ProptestConfig, Strategy, TestRunner};

    /// The canonical uniform strategy for `T`.
    pub fn any<T: super::Arbitrary>() -> super::Any<T> {
        super::Any(std::marker::PhantomData)
    }
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(binding in strategy, ..)` body
/// runs once per case with fresh strategy-drawn values.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (
        @expand ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner =
                    $crate::TestRunner::from_seed($crate::seed_for(stringify!($name)));
                for _case in 0..config.cases {
                    let ($($arg,)*) =
                        ($($crate::Strategy::new_value(&$strategy, &mut runner),)*);
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_strategy_has_requested_len(bytes in collection::vec(any::<u8>(), 32)) {
            prop_assert_eq!(bytes.len(), 32);
        }

        #[test]
        fn range_strategy_in_bounds(x in 0usize..4096) {
            prop_assert!(x < 4096);
        }
    }
}
