//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the subset of the criterion API the paper-experiment benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Each benchmark runs a warm-up iteration followed by
//! `sample_size` timed iterations and prints mean wall-clock time per
//! iteration — no statistics engine, plots, or baselines.

use std::time::{Duration, Instant};

/// Drives one benchmark body.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, running one warm-up pass plus the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// as it goes, so this is a no-op that consumes the group).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id, self.default_sample_size, &mut f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iters as u32
    };
    println!("bench {id:<48} {per_iter:>12.2?}/iter ({} iters)", b.iters);
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut calls = 0u64;
        g.sample_size(4)
            .bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        // One warm-up call plus four timed samples.
        assert_eq!(calls, 5);
    }
}
