//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the subset of the `rand 0.8` API the repository actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, `gen_bool`, and `fill`. The generator is
//! xoshiro256++ seeded through SplitMix64 — the same construction real
//! `SmallRng` uses on 64-bit targets — so streams are deterministic,
//! well-mixed, and fast. It is **not** cryptographically secure, which
//! matches the upstream `SmallRng` contract.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the shim's stand-in for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++, the same
    /// algorithm `rand 0.8`'s `SmallRng` uses on 64-bit targets).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as real SmallRng does for u64 seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SmallRng {
        /// Exposes the raw xoshiro256++ state words — checkpoint
        /// persistence. Round-trips through [`SmallRng::from_state`]:
        /// the restored generator continues the stream exactly where
        /// this one stands.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from persisted state words (the inverse
        /// of [`SmallRng::state`]).
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_seed_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u8 = rng.gen_range(1..=35u8);
            assert!((1..=35).contains(&y));
        }
    }

    #[test]
    fn fill_covers_unaligned_tails() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
