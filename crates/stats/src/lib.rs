//! Statistics for the evaluation (paper §5.1, following Klees et al.):
//! medians over repeated runs, nonparametric confidence intervals, exact
//! two-sided Mann-Whitney U tests, Cohen's d effect sizes, and the
//! Hamming-distance summaries of Figure 5.

/// Median of a sample (mean of the two central order statistics for even
/// sizes).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of an empty sample");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator; 0 for n < 2).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Nonparametric confidence interval for the median: the (lo, hi) order
/// statistics bracketing it. For n = 5 the (min, max) pair gives ≈ 93.75%
/// coverage — the closest achievable to the paper's 95% CI at five runs.
pub fn median_ci(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    (v[0], v[v.len() - 1])
}

/// Exact two-sided Mann-Whitney U test for small samples.
///
/// Computes the exact permutation distribution of U (feasible for the
/// paper's n = m = 5), returning `(u_statistic, p_value)`.
pub fn mann_whitney_u(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len();
    let m = ys.len();
    assert!(n > 0 && m > 0, "both samples must be non-empty");
    // U statistic with tie correction (0.5 per tie).
    let mut u = 0.0;
    for &x in xs {
        for &y in ys {
            if x > y {
                u += 1.0;
            } else if (x - y).abs() < f64::EPSILON {
                u += 0.5;
            }
        }
    }
    // Exact null distribution: enumerate all C(n+m, n) group assignments
    // of the pooled ranks.
    let mut pooled: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
    pooled.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let total = n + m;
    let mut count_extreme = 0u64;
    let mut count_total = 0u64;
    let mean_u = (n * m) as f64 / 2.0;
    let observed_dev = (u - mean_u).abs();
    // Iterate subsets of size n via combination indices.
    let mut idx: Vec<usize> = (0..n).collect();
    loop {
        // U for this assignment.
        let in_x: Vec<bool> = {
            let mut v = vec![false; total];
            for &i in &idx {
                v[i] = true;
            }
            v
        };
        let mut u_perm = 0.0;
        for i in 0..total {
            if !in_x[i] {
                continue;
            }
            for j in 0..total {
                if in_x[j] {
                    continue;
                }
                if pooled[i] > pooled[j] {
                    u_perm += 1.0;
                } else if (pooled[i] - pooled[j]).abs() < f64::EPSILON {
                    u_perm += 0.5;
                }
            }
        }
        count_total += 1;
        if (u_perm - mean_u).abs() >= observed_dev - 1e-12 {
            count_extreme += 1;
        }
        // Next combination.
        let mut i = n;
        loop {
            if i == 0 {
                break;
            }
            i -= 1;
            if idx[i] != i + total - n {
                idx[i] += 1;
                for j in i + 1..n {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
            if i == 0 {
                return (u, count_extreme as f64 / count_total as f64);
            }
        }
        if idx[0] > total - n {
            break;
        }
    }
    (u, count_extreme as f64 / count_total as f64)
}

/// Cohen's d with pooled standard deviation.
pub fn cohens_d(xs: &[f64], ys: &[f64]) -> f64 {
    let (n1, n2) = (xs.len() as f64, ys.len() as f64);
    let (s1, s2) = (std_dev(xs), std_dev(ys));
    let pooled = (((n1 - 1.0) * s1 * s1 + (n2 - 1.0) * s2 * s2) / (n1 + n2 - 2.0)).sqrt();
    if pooled == 0.0 {
        if (mean(xs) - mean(ys)).abs() < f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (mean(xs) - mean(ys)) / pooled
    }
}

/// Summary of a distance distribution (the annotations of Figure 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSummary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarizes a set of distances.
pub fn summarize(xs: &[f64]) -> DistSummary {
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    DistSummary {
        mean: mean(xs),
        std: std_dev(xs),
        min,
        max,
    }
}

/// First `x` (execution count, virtual hour, …) at which a growth
/// curve of `(x, value)` samples reaches `level`. `None` if the curve
/// never gets there. The time-to-coverage-level metric of the
/// `mutator_yield` bench (`sync_speedup` computes its crossing live
/// during the fleet run, so it cannot use a post-hoc curve scan):
/// comparing two fuzzing configurations by *when* they reach a fixed
/// coverage level is robust to the plateau shape at the end of a
/// campaign, where final values saturate and stop discriminating.
pub fn execs_to_level(samples: &[(u64, f64)], level: f64) -> Option<u64> {
    samples
        .iter()
        .find(|&&(_, value)| value >= level)
        .map(|&(x, _)| x)
}

/// A coarse text histogram (violin-plot stand-in) over `bins` buckets.
pub fn ascii_violin(xs: &[f64], bins: usize, width: usize) -> Vec<String> {
    if xs.is_empty() || bins == 0 {
        return Vec::new();
    }
    let s = summarize(xs);
    let span = (s.max - s.min).max(1e-9);
    let mut counts = vec![0usize; bins];
    for &x in xs {
        let b = (((x - s.min) / span) * bins as f64) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let lo = s.min + span * i as f64 / bins as f64;
            let bar = "#".repeat((c * width).div_ceil(peak));
            format!("{lo:8.1} | {bar}")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn std_dev_known_value() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn ci_brackets_median() {
        let xs = [0.84, 0.85, 0.847, 0.842, 0.852];
        let (lo, hi) = median_ci(&xs);
        let m = median(&xs);
        assert!(lo <= m && m <= hi);
        assert_eq!(lo, 0.84);
        assert_eq!(hi, 0.852);
    }

    #[test]
    fn mann_whitney_separated_samples() {
        // Fully separated n=m=5: the most extreme assignment; exact
        // two-sided p = 2/C(10,5) = 2/252 ≈ 0.0079.
        let xs = [10.0, 11.0, 12.0, 13.0, 14.0];
        let ys = [1.0, 2.0, 3.0, 4.0, 5.0];
        let (u, p) = mann_whitney_u(&xs, &ys);
        assert_eq!(u, 25.0);
        assert!((p - 2.0 / 252.0).abs() < 1e-9, "p={p}");
    }

    #[test]
    fn mann_whitney_identical_samples() {
        let xs = [1.0, 2.0, 3.0];
        let (u, p) = mann_whitney_u(&xs, &xs);
        assert_eq!(u, 4.5);
        assert!(p > 0.99, "identical samples cannot be significant: {p}");
    }

    #[test]
    fn cohens_d_signs_and_magnitude() {
        let a = [10.0, 10.5, 11.0, 10.2, 10.8];
        let b = [5.0, 5.5, 6.0, 5.2, 5.8];
        let d = cohens_d(&a, &b);
        assert!(d > 5.0, "large effect expected, got {d}");
        assert!(cohens_d(&b, &a) < -5.0);
        assert_eq!(cohens_d(&a, &a), 0.0);
    }

    #[test]
    fn execs_to_level_finds_first_crossing() {
        let curve = [(100, 0.1), (200, 0.3), (300, 0.3), (400, 0.7)];
        assert_eq!(execs_to_level(&curve, 0.3), Some(200));
        assert_eq!(execs_to_level(&curve, 0.0), Some(100));
        assert_eq!(execs_to_level(&curve, 0.71), None);
        assert_eq!(execs_to_level(&[], 0.0), None);
    }

    #[test]
    fn summary_and_violin() {
        let xs: Vec<f64> = (0..100).map(|i| 400.0 + (i % 10) as f64 * 10.0).collect();
        let s = summarize(&xs);
        assert!(s.min >= 400.0 && s.max <= 500.0);
        let rows = ascii_violin(&xs, 5, 40);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().any(|r| r.contains('#')));
    }
}
