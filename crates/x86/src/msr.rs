//! Model-specific registers: index catalogue, storage, and validity rules.
//!
//! The MSR surface matters to nested virtualization in three ways: the
//! `IA32_VMX_*` capability MSRs define which VMCS control bits may be set
//! (`nf-vmx` interprets them); VM entry loads guest MSRs from the VMCS and
//! from the MSR-load area (where VirtualBox's CVE-2024-21106 lived); and
//! the vCPU configurator toggles feature bits that surface through MSRs.

use std::collections::BTreeMap;

use crate::addr::VirtAddr;
use crate::{ArchError, ArchResult};

/// Well-known MSR indices used throughout the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u32)]
pub enum Msr {
    /// Time-stamp counter.
    Tsc = 0x10,
    /// APIC base address and enable bits.
    ApicBase = 0x1b,
    /// Feature control: VMX enable lock.
    FeatureControl = 0x3a,
    /// SYSENTER target code segment.
    SysenterCs = 0x174,
    /// SYSENTER stack pointer.
    SysenterEsp = 0x175,
    /// SYSENTER instruction pointer.
    SysenterEip = 0x176,
    /// Debug control (LBR, BTF).
    DebugCtl = 0x1d9,
    /// Page-attribute table.
    Pat = 0x277,
    /// Performance global control.
    PerfGlobalCtrl = 0x38f,
    /// VMX capability: basic information.
    VmxBasic = 0x480,
    /// VMX capability: pin-based controls.
    VmxPinbasedCtls = 0x481,
    /// VMX capability: primary processor-based controls.
    VmxProcbasedCtls = 0x482,
    /// VMX capability: VM-exit controls.
    VmxExitCtls = 0x483,
    /// VMX capability: VM-entry controls.
    VmxEntryCtls = 0x484,
    /// VMX capability: miscellaneous data.
    VmxMisc = 0x485,
    /// VMX capability: CR0 bits fixed to 1.
    VmxCr0Fixed0 = 0x486,
    /// VMX capability: CR0 bits fixed to 0 (reads as allowed-1 mask).
    VmxCr0Fixed1 = 0x487,
    /// VMX capability: CR4 bits fixed to 1.
    VmxCr4Fixed0 = 0x488,
    /// VMX capability: CR4 bits fixed to 0 (reads as allowed-1 mask).
    VmxCr4Fixed1 = 0x489,
    /// VMX capability: VMCS enumeration.
    VmxVmcsEnum = 0x48a,
    /// VMX capability: secondary processor-based controls.
    VmxProcbasedCtls2 = 0x48b,
    /// VMX capability: EPT and VPID capabilities.
    VmxEptVpidCap = 0x48c,
    /// VMX capability: true pin-based controls.
    VmxTruePinbasedCtls = 0x48d,
    /// VMX capability: true processor-based controls.
    VmxTrueProcbasedCtls = 0x48e,
    /// VMX capability: true VM-exit controls.
    VmxTrueExitCtls = 0x48f,
    /// VMX capability: true VM-entry controls.
    VmxTrueEntryCtls = 0x490,
    /// VMX capability: VM functions.
    VmxVmfunc = 0x491,
    /// Extended feature enables (long mode, NX, SVME).
    Efer = 0xc000_0080,
    /// SYSCALL target (legacy).
    Star = 0xc000_0081,
    /// SYSCALL target (64-bit).
    Lstar = 0xc000_0082,
    /// SYSCALL target (compat).
    Cstar = 0xc000_0083,
    /// SYSCALL flag mask.
    SfMask = 0xc000_0084,
    /// FS segment base.
    FsBase = 0xc000_0100,
    /// GS segment base.
    GsBase = 0xc000_0101,
    /// Swapped GS base for SWAPGS.
    KernelGsBase = 0xc000_0102,
    /// AMD: SVM control.
    VmCr = 0xc001_0114,
    /// AMD: host save-area physical address for `VMRUN`.
    VmHsavePa = 0xc001_0117,
}

impl Msr {
    /// Returns the raw MSR index.
    pub const fn index(self) -> u32 {
        self as u32
    }

    /// Returns `true` if the value written to this MSR must be a canonical
    /// virtual address (a non-canonical write raises `#GP`, and VM entry
    /// must enforce the same for loaded guest/host values).
    ///
    /// `KernelGsBase` is the member VirtualBox failed to check during
    /// nested entry MSR-load processing (CVE-2024-21106).
    pub const fn requires_canonical(self) -> bool {
        matches!(
            self,
            Msr::SysenterEsp
                | Msr::SysenterEip
                | Msr::FsBase
                | Msr::GsBase
                | Msr::KernelGsBase
                | Msr::Lstar
                | Msr::Cstar
        )
    }

    /// Looks up a known MSR by raw index.
    pub fn from_index(index: u32) -> Option<Msr> {
        ALL_MSRS.iter().copied().find(|m| m.index() == index)
    }
}

/// Every MSR the model knows about.
pub const ALL_MSRS: &[Msr] = &[
    Msr::Tsc,
    Msr::ApicBase,
    Msr::FeatureControl,
    Msr::SysenterCs,
    Msr::SysenterEsp,
    Msr::SysenterEip,
    Msr::DebugCtl,
    Msr::Pat,
    Msr::PerfGlobalCtrl,
    Msr::VmxBasic,
    Msr::VmxPinbasedCtls,
    Msr::VmxProcbasedCtls,
    Msr::VmxExitCtls,
    Msr::VmxEntryCtls,
    Msr::VmxMisc,
    Msr::VmxCr0Fixed0,
    Msr::VmxCr0Fixed1,
    Msr::VmxCr4Fixed0,
    Msr::VmxCr4Fixed1,
    Msr::VmxVmcsEnum,
    Msr::VmxProcbasedCtls2,
    Msr::VmxEptVpidCap,
    Msr::VmxTruePinbasedCtls,
    Msr::VmxTrueProcbasedCtls,
    Msr::VmxTrueExitCtls,
    Msr::VmxTrueEntryCtls,
    Msr::VmxVmfunc,
    Msr::Efer,
    Msr::Star,
    Msr::Lstar,
    Msr::Cstar,
    Msr::SfMask,
    Msr::FsBase,
    Msr::GsBase,
    Msr::KernelGsBase,
    Msr::VmCr,
    Msr::VmHsavePa,
];

/// The MSR-index fuzz dictionary: every catalogued index plus the
/// off-catalogue neighbours that exercise the unknown-MSR arms (one
/// past each architectural range, the synthetic 0x480-block end, and
/// the x2APIC window the model does not implement).
///
/// Structure-aware MSR-area mutators draw indices from here instead of
/// mutating the index bytes blindly: most of the vocabulary lands on
/// MSRs the VM-entry load path actually validates (`requires_canonical`
/// members like `KernelGsBase` are CVE-2024-21106 territory), while the
/// deliberate strays keep the `#GP`/unknown-MSR handlers reachable.
pub fn index_dictionary() -> Vec<u32> {
    let mut dict: Vec<u32> = ALL_MSRS.iter().map(|m| m.index()).collect();
    dict.extend_from_slice(&[
        0x0,         // IA32_P5_MC_ADDR: known index space, unmodeled
        0x492,       // one past the VMX capability block
        0x800,       // x2APIC window start
        0xc000_0085, // hole after the SYSCALL block
        0xc001_0118, // one past VM_HSAVE_PA
    ]);
    dict
}

/// Checks an `IA32_PAT` value: every byte must encode a valid memory type
/// (0, 1, 4, 5, 6 or 7).
pub fn pat_valid(pat: u64) -> bool {
    (0..8).all(|i| matches!((pat >> (i * 8)) & 0xff, 0 | 1 | 4 | 5 | 6 | 7))
}

/// Rounds an `IA32_PAT` value so every byte is a valid memory type,
/// replacing invalid bytes with write-back (6).
pub fn pat_rounded(pat: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..8 {
        let b = (pat >> (i * 8)) & 0xff;
        let b = if matches!(b, 0 | 1 | 4 | 5 | 6 | 7) {
            b
        } else {
            6
        };
        out |= b << (i * 8);
    }
    out
}

/// Checks an `IA32_DEBUGCTL` value against the modeled defined-bit mask
/// (bits 0..=15 minus reserved holes; everything above must be zero).
pub fn debugctl_valid(val: u64) -> bool {
    const DEFINED: u64 = 0xffc3;
    val & !DEFINED == 0
}

/// A flat MSR file with architectural reset defaults.
///
/// # Examples
///
/// ```
/// use nf_x86::{Msr, MsrFile};
/// let mut msrs = MsrFile::at_reset();
/// msrs.write(Msr::KernelGsBase.index(), 0xffff_8000_dead_0000).unwrap();
/// assert!(msrs.write(Msr::KernelGsBase.index(), 0x8000_0000_0000_0000).is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MsrFile {
    values: BTreeMap<u32, u64>,
}

impl MsrFile {
    /// Creates an MSR file with architectural reset values.
    pub fn at_reset() -> Self {
        let mut f = MsrFile::default();
        f.values.insert(Msr::Pat.index(), 0x0007_0406_0007_0406);
        f.values.insert(Msr::ApicBase.index(), 0xfee0_0900);
        f
    }

    /// Reads an MSR, returning 0 for never-written known indices and an
    /// error for unknown ones (a real CPU would `#GP`).
    pub fn read(&self, index: u32) -> ArchResult<u64> {
        if Msr::from_index(index).is_none() {
            return Err(ArchError::new(
                "msr.unknown",
                format!("rdmsr of unknown MSR {index:#x}"),
            ));
        }
        Ok(self.values.get(&index).copied().unwrap_or(0))
    }

    /// Writes an MSR, enforcing canonicality and per-MSR value rules.
    pub fn write(&mut self, index: u32, value: u64) -> ArchResult {
        let Some(msr) = Msr::from_index(index) else {
            return Err(ArchError::new(
                "msr.unknown",
                format!("wrmsr of unknown MSR {index:#x}"),
            ));
        };
        if msr.requires_canonical() && !VirtAddr(value).is_canonical() {
            return Err(ArchError::new(
                "msr.non_canonical",
                format!("wrmsr {index:#x} with non-canonical value {value:#x}"),
            ));
        }
        if msr == Msr::Pat && !pat_valid(value) {
            return Err(ArchError::new(
                "msr.pat",
                format!("invalid PAT value {value:#x}"),
            ));
        }
        if msr == Msr::DebugCtl && !debugctl_valid(value) {
            return Err(ArchError::new(
                "msr.debugctl",
                format!("reserved DEBUGCTL bits set in {value:#x}"),
            ));
        }
        self.values.insert(index, value);
        Ok(())
    }

    /// Writes without validation — models microcode/VM-entry loads that
    /// bypass the `wrmsr` checks (the exact bypass that makes unchecked
    /// MSR-load lists dangerous).
    pub fn write_unchecked(&mut self, index: u32, value: u64) {
        self.values.insert(index, value);
    }

    /// Raw read without the known-MSR guard (returns 0 when absent).
    pub fn read_raw(&self, index: u32) -> u64 {
        self.values.get(&index).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_roundtrip() {
        for &m in ALL_MSRS {
            assert_eq!(Msr::from_index(m.index()), Some(m));
        }
        assert_eq!(Msr::from_index(0xdead), None);
    }

    #[test]
    fn canonical_enforcement_on_write() {
        let mut f = MsrFile::at_reset();
        assert!(f.write(Msr::Lstar.index(), 0x8000_0000_0000_0000).is_err());
        assert!(f.write(Msr::Lstar.index(), 0xffff_8000_0000_0000).is_ok());
        // STAR carries no address; anything goes.
        assert!(f.write(Msr::Star.index(), u64::MAX).is_ok());
    }

    #[test]
    fn pat_validity_and_rounding() {
        assert!(pat_valid(0x0007_0406_0007_0406));
        assert!(!pat_valid(0x0000_0000_0000_0002));
        assert!(!pat_valid(0x0800_0000_0000_0000));
        let r = pat_rounded(0x0203_0406_0007_0406);
        assert!(pat_valid(r));
        assert_eq!(r & 0xffff_ffff, 0x0007_0406);
    }

    #[test]
    fn debugctl_reserved() {
        assert!(debugctl_valid(0x1));
        assert!(!debugctl_valid(1 << 2));
        assert!(!debugctl_valid(1 << 16));
    }

    #[test]
    fn dictionary_covers_catalogue_plus_strays() {
        let dict = index_dictionary();
        for &m in ALL_MSRS {
            assert!(dict.contains(&m.index()), "{m:?} missing from dictionary");
        }
        let strays = dict
            .iter()
            .filter(|&&i| Msr::from_index(i).is_none())
            .count();
        assert!(strays >= 4, "unknown-MSR arms need stray indices");
        let mut unique = dict.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), dict.len(), "dictionary entries are unique");
    }

    #[test]
    fn unknown_msr_faults() {
        let mut f = MsrFile::at_reset();
        assert_eq!(f.read(0x9999).unwrap_err().rule, "msr.unknown");
        assert_eq!(f.write(0x9999, 0).unwrap_err().rule, "msr.unknown");
    }

    #[test]
    fn unchecked_write_bypasses_rules() {
        let mut f = MsrFile::at_reset();
        f.write_unchecked(Msr::KernelGsBase.index(), 0x8000_0000_0000_0000);
        assert_eq!(
            f.read(Msr::KernelGsBase.index()).unwrap(),
            0x8000_0000_0000_0000
        );
    }

    #[test]
    fn reset_defaults() {
        let f = MsrFile::at_reset();
        assert_eq!(f.read(Msr::Pat.index()).unwrap(), 0x0007_0406_0007_0406);
        assert_eq!(f.read(Msr::Efer.index()).unwrap(), 0);
    }
}
