//! x86 architectural substrate for the NecoFuzz reproduction.
//!
//! This crate models the architectural state that hardware-assisted
//! virtualization operates on: control registers, `RFLAGS`, `EFER`, debug
//! registers, segmentation, descriptor tables, MSRs, paging modes, and the
//! interrupt/activity state machinery that the VMCS guest-state area
//! captures.
//!
//! Everything here is a *model*: plain data types with the architectural
//! validity rules attached as methods. The VMX/SVM-specific structures
//! (VMCS, VMCB, capability MSRs) live in `nf-vmx`, and the behavioural
//! semantics (VM-entry checks, silent rounding) live in `nf-silicon`.
//!
//! # Examples
//!
//! ```
//! use nf_x86::{Cr0, Cr4, Efer, PagingMode};
//!
//! let cr0 = Cr0::new(Cr0::PE | Cr0::PG);
//! let cr4 = Cr4::new(Cr4::PAE);
//! let efer = Efer::new(Efer::LME | Efer::LMA);
//! assert_eq!(PagingMode::derive(cr0, cr4, efer), PagingMode::FourLevel);
//! ```

pub mod addr;
pub mod cpuid;
pub mod cr;
pub mod desc;
pub mod dr;
pub mod efer;
pub mod interrupt;
pub mod msr;
pub mod paging;
pub mod rflags;
pub mod segment;

pub use addr::{GuestPhysAddr, HostPhysAddr, VirtAddr, MAXPHYADDR};
pub use cpuid::{CpuFeature, CpuVendor, FeatureSet};
pub use cr::{Cr0, Cr3, Cr4};
pub use desc::DescriptorTable;
pub use dr::{Dr6, Dr7};
pub use efer::Efer;
pub use interrupt::{ActivityState, EventInjection, EventType, Interruptibility, Vector};
pub use msr::{Msr, MsrFile};
pub use paging::{PagingMode, Pdpte};
pub use rflags::RFlags;
pub use segment::{AccessRights, SegReg, Segment, SegmentKind, Selector};

/// An architectural rule violation, produced by the validity checkers.
///
/// The silicon model and the hypervisors map these onto their own error
/// reporting (VM-entry failure, `#GP`, consistency-check exit, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchError {
    /// Short machine-readable rule identifier, e.g. `"cr0.pg_without_pe"`.
    pub rule: &'static str,
    /// Human-readable explanation used in diagnostics and fuzzer reports.
    pub detail: String,
}

impl ArchError {
    /// Creates a new error for `rule` with a formatted `detail` message.
    pub fn new(rule: &'static str, detail: impl Into<String>) -> Self {
        Self {
            rule,
            detail: detail.into(),
        }
    }
}

impl core::fmt::Display for ArchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {}", self.rule, self.detail)
    }
}

impl std::error::Error for ArchError {}

/// Convenience result alias for architectural checks.
pub type ArchResult<T = ()> = Result<T, ArchError>;
