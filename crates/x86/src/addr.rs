//! Address types and canonicality rules.
//!
//! The VMX guest/host-state checks and the SVM `VMRUN` checks repeatedly
//! require *canonical* virtual addresses (sign-extended from bit 47) and
//! physical addresses that fit within the processor's physical-address
//! width. Both rules are modeled here so that the silicon oracle, the
//! Bochs-derived validator, and the hypervisor re-implementations all share
//! one definition.

/// Physical address width of the modeled processor, in bits.
///
/// Real parts report this via CPUID leaf `0x8000_0008`; 46 bits is typical
/// for the desktop parts used in the paper (Core i9-12900K, Ryzen 5950X).
pub const MAXPHYADDR: u32 = 46;

/// Number of implemented virtual-address bits (4-level paging).
pub const VADDR_BITS: u32 = 48;

/// A virtual (linear) address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Returns `true` if the address is canonical: bits 63:47 are all equal
    /// to bit 47.
    ///
    /// # Examples
    ///
    /// ```
    /// use nf_x86::VirtAddr;
    /// assert!(VirtAddr(0x0000_7fff_ffff_ffff).is_canonical());
    /// assert!(VirtAddr(0xffff_8000_0000_0000).is_canonical());
    /// assert!(!VirtAddr(0x8000_0000_0000_0000).is_canonical());
    /// ```
    pub fn is_canonical(self) -> bool {
        let shift = 64 - VADDR_BITS;
        ((self.0 as i64) << shift >> shift) as u64 == self.0
    }

    /// Forces the address to the nearest canonical value by sign-extending
    /// from bit 47. Used by the validator's rounding pass.
    pub fn canonicalized(self) -> Self {
        let shift = 64 - VADDR_BITS;
        VirtAddr((((self.0 as i64) << shift) >> shift) as u64)
    }
}

/// A guest-physical address (the address space an L2 guest sees).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GuestPhysAddr(pub u64);

/// A host-physical address (what the L0 hypervisor programs into hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HostPhysAddr(pub u64);

/// Returns `true` if `pa` fits in the modeled physical-address width.
pub fn phys_in_width(pa: u64) -> bool {
    pa < (1u64 << MAXPHYADDR)
}

/// Returns `true` if `pa` is aligned to a 4 KiB page boundary.
pub fn page_aligned(pa: u64) -> bool {
    pa & 0xfff == 0
}

/// Masks `pa` down to the modeled physical-address width and page-aligns it.
///
/// This is the rounding action both the silicon model and the validator use
/// for VMCS physical-address fields (I/O bitmaps, MSR bitmaps, APIC pages).
pub fn round_phys(pa: u64) -> u64 {
    pa & ((1u64 << MAXPHYADDR) - 1) & !0xfff
}

impl GuestPhysAddr {
    /// Returns `true` if the address fits in the physical-address width.
    pub fn in_width(self) -> bool {
        phys_in_width(self.0)
    }

    /// Returns `true` if the address is 4 KiB aligned.
    pub fn page_aligned(self) -> bool {
        page_aligned(self.0)
    }
}

impl HostPhysAddr {
    /// Returns `true` if the address fits in the physical-address width.
    pub fn in_width(self) -> bool {
        phys_in_width(self.0)
    }

    /// Returns `true` if the address is 4 KiB aligned.
    pub fn page_aligned(self) -> bool {
        page_aligned(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_boundaries() {
        assert!(VirtAddr(0).is_canonical());
        assert!(VirtAddr(0x0000_7fff_ffff_ffff).is_canonical());
        assert!(!VirtAddr(0x0000_8000_0000_0000).is_canonical());
        assert!(!VirtAddr(0xffff_7fff_ffff_ffff).is_canonical());
        assert!(VirtAddr(0xffff_8000_0000_0000).is_canonical());
        assert!(VirtAddr(u64::MAX).is_canonical());
    }

    #[test]
    fn canonicalized_is_canonical_and_idempotent() {
        for raw in [
            0u64,
            1,
            0x8000_0000_0000_0000,
            0x1234_5678_9abc_def0,
            u64::MAX,
        ] {
            let c = VirtAddr(raw).canonicalized();
            assert!(c.is_canonical(), "{raw:#x} -> {:#x}", c.0);
            assert_eq!(c.canonicalized(), c);
        }
    }

    #[test]
    fn canonicalized_preserves_low_bits() {
        let c = VirtAddr(0x8000_dead_beef_f000).canonicalized();
        assert_eq!(c.0 & 0x0000_ffff_ffff_ffff, 0x0000_dead_beef_f000);
    }

    #[test]
    fn phys_width_and_alignment() {
        assert!(phys_in_width(0));
        assert!(phys_in_width((1 << MAXPHYADDR) - 1));
        assert!(!phys_in_width(1 << MAXPHYADDR));
        assert!(page_aligned(0x1000));
        assert!(!page_aligned(0x1001));
    }

    #[test]
    fn round_phys_produces_valid_addresses() {
        for raw in [u64::MAX, 0xffff_ffff_ffff_f123, 0x1fff] {
            let r = round_phys(raw);
            assert!(phys_in_width(r));
            assert!(page_aligned(r));
        }
    }
}
