//! Control registers `CR0`, `CR3`, and `CR4`.
//!
//! Control registers carry most of the cross-field constraints that make
//! VMCS validation hard: paging mode is a function of `CR0.PG`, `CR4.PAE`,
//! and `EFER.LME`; VMX operation pins `CR4.VMXE`; and both registers have
//! large reserved regions that must read as zero. The constants and checks
//! here are shared by the silicon oracle, the validator, and all three
//! hypervisor models.

use crate::addr::MAXPHYADDR;
use crate::{ArchError, ArchResult};

/// The `CR0` control register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Cr0(pub u64);

impl Cr0 {
    /// Protection Enable.
    pub const PE: u64 = 1 << 0;
    /// Monitor Coprocessor.
    pub const MP: u64 = 1 << 1;
    /// Emulation.
    pub const EM: u64 = 1 << 2;
    /// Task Switched.
    pub const TS: u64 = 1 << 3;
    /// Extension Type (hardwired to 1 on modern parts).
    pub const ET: u64 = 1 << 4;
    /// Numeric Error.
    pub const NE: u64 = 1 << 5;
    /// Write Protect.
    pub const WP: u64 = 1 << 16;
    /// Alignment Mask.
    pub const AM: u64 = 1 << 18;
    /// Not Write-through.
    pub const NW: u64 = 1 << 29;
    /// Cache Disable.
    pub const CD: u64 = 1 << 30;
    /// Paging.
    pub const PG: u64 = 1 << 31;

    /// All architecturally defined bits; the complement is reserved and
    /// must be zero.
    pub const DEFINED: u64 = Self::PE
        | Self::MP
        | Self::EM
        | Self::TS
        | Self::ET
        | Self::NE
        | Self::WP
        | Self::AM
        | Self::NW
        | Self::CD
        | Self::PG;

    /// Creates a `CR0` from a raw value without validation.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns `true` if `bit` (one of the associated constants) is set.
    pub const fn has(self, bit: u64) -> bool {
        self.0 & bit != 0
    }

    /// Returns the reserved bits that are (illegally) set.
    pub const fn reserved_set(self) -> u64 {
        self.0 & !Self::DEFINED
    }

    /// Checks the architectural write rules for `CR0` (what a `mov cr0`
    /// would `#GP` on, ignoring VMX fixed-bit requirements).
    ///
    /// Rules: reserved bits clear, `PG` requires `PE`, and `NW` without
    /// `CD` is invalid.
    pub fn check_arch(self) -> ArchResult {
        if self.reserved_set() != 0 {
            return Err(ArchError::new(
                "cr0.reserved",
                format!("reserved CR0 bits set: {:#x}", self.reserved_set()),
            ));
        }
        if self.has(Self::PG) && !self.has(Self::PE) {
            return Err(ArchError::new(
                "cr0.pg_without_pe",
                "CR0.PG=1 requires CR0.PE=1",
            ));
        }
        if self.has(Self::NW) && !self.has(Self::CD) {
            return Err(ArchError::new(
                "cr0.nw_without_cd",
                "CR0.NW=1 requires CR0.CD=1",
            ));
        }
        Ok(())
    }
}

/// The `CR3` control register (page-table base).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Cr3(pub u64);

impl Cr3 {
    /// Page-level write-through (ignored when `CR4.PCIDE=1`).
    pub const PWT: u64 = 1 << 3;
    /// Page-level cache disable (ignored when `CR4.PCIDE=1`).
    pub const PCD: u64 = 1 << 4;

    /// Creates a `CR3` from a raw value without validation.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the page-table base address portion.
    pub const fn base(self) -> u64 {
        self.0 & !0xfff & ((1 << MAXPHYADDR) - 1)
    }

    /// Checks that no bits beyond the physical-address width are set.
    ///
    /// This is the guest-state check VM entry performs (SDM 26.3.1.1) and,
    /// notably, the check whose *absence* for `VMCS12.HOST_CR3` led to
    /// CVE-2023-30456's sibling fixes.
    pub fn check_width(self) -> ArchResult {
        if self.0 >> MAXPHYADDR != 0 {
            return Err(ArchError::new(
                "cr3.width",
                format!("CR3 {:#x} exceeds MAXPHYADDR={MAXPHYADDR}", self.0),
            ));
        }
        Ok(())
    }
}

/// The `CR4` control register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Cr4(pub u64);

impl Cr4 {
    /// Virtual-8086 Mode Extensions.
    pub const VME: u64 = 1 << 0;
    /// Protected-Mode Virtual Interrupts.
    pub const PVI: u64 = 1 << 1;
    /// Time Stamp Disable.
    pub const TSD: u64 = 1 << 2;
    /// Debugging Extensions.
    pub const DE: u64 = 1 << 3;
    /// Page Size Extensions.
    pub const PSE: u64 = 1 << 4;
    /// Physical Address Extension.
    pub const PAE: u64 = 1 << 5;
    /// Machine-Check Enable.
    pub const MCE: u64 = 1 << 6;
    /// Page Global Enable.
    pub const PGE: u64 = 1 << 7;
    /// Performance-Monitoring Counter Enable.
    pub const PCE: u64 = 1 << 8;
    /// OS FXSAVE/FXRSTOR Support.
    pub const OSFXSR: u64 = 1 << 9;
    /// OS Unmasked SIMD FP Exceptions.
    pub const OSXMMEXCPT: u64 = 1 << 10;
    /// User-Mode Instruction Prevention.
    pub const UMIP: u64 = 1 << 11;
    /// 57-bit linear addresses (5-level paging).
    pub const LA57: u64 = 1 << 12;
    /// VMX Enable.
    pub const VMXE: u64 = 1 << 13;
    /// SMX Enable.
    pub const SMXE: u64 = 1 << 14;
    /// FSGSBASE instructions enable.
    pub const FSGSBASE: u64 = 1 << 16;
    /// Process-Context Identifiers enable.
    pub const PCIDE: u64 = 1 << 17;
    /// XSAVE and Processor Extended States enable.
    pub const OSXSAVE: u64 = 1 << 18;
    /// Supervisor-Mode Execution Prevention.
    pub const SMEP: u64 = 1 << 20;
    /// Supervisor-Mode Access Prevention.
    pub const SMAP: u64 = 1 << 21;
    /// Protection Keys for user pages.
    pub const PKE: u64 = 1 << 22;
    /// Control-flow Enforcement Technology.
    pub const CET: u64 = 1 << 23;
    /// Protection Keys for supervisor pages.
    pub const PKS: u64 = 1 << 24;

    /// All architecturally defined bits on the modeled processor.
    pub const DEFINED: u64 = Self::VME
        | Self::PVI
        | Self::TSD
        | Self::DE
        | Self::PSE
        | Self::PAE
        | Self::MCE
        | Self::PGE
        | Self::PCE
        | Self::OSFXSR
        | Self::OSXMMEXCPT
        | Self::UMIP
        | Self::LA57
        | Self::VMXE
        | Self::SMXE
        | Self::FSGSBASE
        | Self::PCIDE
        | Self::OSXSAVE
        | Self::SMEP
        | Self::SMAP
        | Self::PKE
        | Self::CET
        | Self::PKS;

    /// Creates a `CR4` from a raw value without validation.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns `true` if `bit` (one of the associated constants) is set.
    pub const fn has(self, bit: u64) -> bool {
        self.0 & bit != 0
    }

    /// Returns the reserved bits that are (illegally) set.
    pub const fn reserved_set(self) -> u64 {
        self.0 & !Self::DEFINED
    }

    /// Checks the architectural write rules for `CR4`.
    ///
    /// Rules: reserved bits clear; `PCIDE` requires long mode (checked by
    /// the caller against `EFER`); `CET` requires `CR0.WP` (checked by the
    /// caller against `CR0`).
    pub fn check_arch(self) -> ArchResult {
        if self.reserved_set() != 0 {
            return Err(ArchError::new(
                "cr4.reserved",
                format!("reserved CR4 bits set: {:#x}", self.reserved_set()),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr0_valid_configurations() {
        assert!(Cr0::new(Cr0::PE).check_arch().is_ok());
        assert!(Cr0::new(Cr0::PE | Cr0::PG).check_arch().is_ok());
        assert!(Cr0::new(Cr0::CD | Cr0::NW | Cr0::PE).check_arch().is_ok());
        assert!(Cr0::new(0).check_arch().is_ok());
    }

    #[test]
    fn cr0_pg_without_pe_rejected() {
        let err = Cr0::new(Cr0::PG).check_arch().unwrap_err();
        assert_eq!(err.rule, "cr0.pg_without_pe");
    }

    #[test]
    fn cr0_nw_without_cd_rejected() {
        let err = Cr0::new(Cr0::NW).check_arch().unwrap_err();
        assert_eq!(err.rule, "cr0.nw_without_cd");
    }

    #[test]
    fn cr0_reserved_rejected() {
        let err = Cr0::new(1 << 17).check_arch().unwrap_err();
        assert_eq!(err.rule, "cr0.reserved");
        assert!(Cr0::new(1u64 << 63).check_arch().is_err());
    }

    #[test]
    fn cr3_width_check() {
        assert!(Cr3::new(0x1000).check_width().is_ok());
        assert!(Cr3::new(1 << MAXPHYADDR).check_width().is_err());
        assert_eq!(Cr3::new(0x1234_5fff).base(), 0x1234_5000);
    }

    #[test]
    fn cr4_reserved_rejected() {
        assert!(Cr4::new(Cr4::PAE | Cr4::VMXE).check_arch().is_ok());
        let err = Cr4::new(1 << 15).check_arch().unwrap_err();
        assert_eq!(err.rule, "cr4.reserved");
        assert!(Cr4::new(1 << 19).check_arch().is_err());
        assert!(Cr4::new(1 << 25).check_arch().is_err());
    }
}
