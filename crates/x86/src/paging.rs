//! Paging-mode derivation and PAE PDPTE rules.
//!
//! The paging mode is a *derived* quantity — a function of `CR0.PG`,
//! `CR4.PAE`, `CR4.LA57`, and `EFER.LMA`. Hypervisors that re-derive it
//! from individual bits instead of asking the hardware are exactly the
//! ones that fall into the CVE-2023-30456 trap: the CPU silently assumes
//! `CR4.PAE=1` when IA-32e mode is on, while a literal reading of the bits
//! yields a different (shorter) page-walk than the one hardware performs.

use crate::{ArchError, ArchResult, Cr0, Cr4, Efer};

/// The five architectural paging modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagingMode {
    /// Paging disabled (`CR0.PG=0`).
    None,
    /// Classic 32-bit paging (two levels).
    ThirtyTwoBit,
    /// PAE paging (three levels).
    Pae,
    /// IA-32e four-level paging.
    FourLevel,
    /// Five-level paging (`CR4.LA57=1`).
    FiveLevel,
}

impl PagingMode {
    /// Derives the paging mode the *hardware* would use, including the
    /// silent `CR4.PAE` assumption in IA-32e mode.
    pub fn derive(cr0: Cr0, cr4: Cr4, efer: Efer) -> PagingMode {
        if !cr0.has(Cr0::PG) {
            return PagingMode::None;
        }
        if efer.has(Efer::LME) || efer.has(Efer::LMA) {
            // Hardware behaves as if CR4.PAE were set in IA-32e mode even
            // when the bit reads 0 after a malformed VM entry.
            if cr4.has(Cr4::LA57) {
                return PagingMode::FiveLevel;
            }
            return PagingMode::FourLevel;
        }
        if cr4.has(Cr4::PAE) {
            return PagingMode::Pae;
        }
        PagingMode::ThirtyTwoBit
    }

    /// Derives the paging mode by *literal* bit interpretation — the buggy
    /// software reading where IA-32e mode with `CR4.PAE=0` degenerates to
    /// a mode the hardware never uses. Kept for the vulnerable hypervisor
    /// model; correct software must use [`PagingMode::derive`].
    pub fn derive_literal(cr0: Cr0, cr4: Cr4, efer: Efer) -> PagingMode {
        if !cr0.has(Cr0::PG) {
            return PagingMode::None;
        }
        if !cr4.has(Cr4::PAE) {
            // Literal reading: no PAE bit, no PAE walk — even in IA-32e.
            return PagingMode::ThirtyTwoBit;
        }
        if efer.has(Efer::LME) || efer.has(Efer::LMA) {
            if cr4.has(Cr4::LA57) {
                return PagingMode::FiveLevel;
            }
            return PagingMode::FourLevel;
        }
        PagingMode::Pae
    }

    /// Number of page-table levels the walk traverses.
    pub const fn walk_levels(self) -> usize {
        match self {
            PagingMode::None => 0,
            PagingMode::ThirtyTwoBit => 2,
            PagingMode::Pae => 3,
            PagingMode::FourLevel => 4,
            PagingMode::FiveLevel => 5,
        }
    }
}

/// A PAE page-directory-pointer-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pdpte(pub u64);

impl Pdpte {
    /// Present bit.
    pub const P: u64 = 1;
    /// Reserved bits that must be zero when present (bits 2:1 and 8:5).
    pub const RESERVED: u64 = 0b1_1110_0110;

    /// Checks the VM-entry PDPTE rule (SDM 26.3.1.6): when present,
    /// reserved bits must be zero.
    pub fn check(self) -> ArchResult {
        if self.0 & Self::P != 0 && self.0 & Self::RESERVED != 0 {
            return Err(ArchError::new(
                "pdpte.reserved",
                format!("PDPTE {:#x} has reserved bits set", self.0),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn long_mode_regs() -> (Cr0, Cr4, Efer) {
        (
            Cr0::new(Cr0::PE | Cr0::PG),
            Cr4::new(Cr4::PAE),
            Efer::new(Efer::LME | Efer::LMA),
        )
    }

    #[test]
    fn mode_derivation_matrix() {
        let (cr0, cr4, efer) = long_mode_regs();
        assert_eq!(PagingMode::derive(cr0, cr4, efer), PagingMode::FourLevel);
        assert_eq!(
            PagingMode::derive(Cr0::new(Cr0::PE), cr4, efer),
            PagingMode::None
        );
        assert_eq!(
            PagingMode::derive(cr0, Cr4::new(Cr4::PAE), Efer::new(0)),
            PagingMode::Pae
        );
        assert_eq!(
            PagingMode::derive(cr0, Cr4::new(0), Efer::new(0)),
            PagingMode::ThirtyTwoBit
        );
        assert_eq!(
            PagingMode::derive(cr0, Cr4::new(Cr4::PAE | Cr4::LA57), efer),
            PagingMode::FiveLevel
        );
    }

    #[test]
    fn hardware_assumes_pae_in_long_mode() {
        // The CVE-2023-30456 state: IA-32e guest with CR4.PAE=0.
        let cr0 = Cr0::new(Cr0::PE | Cr0::PG);
        let cr4 = Cr4::new(0);
        let efer = Efer::new(Efer::LME | Efer::LMA);
        assert_eq!(PagingMode::derive(cr0, cr4, efer), PagingMode::FourLevel);
        // Literal software reading disagrees — that disagreement is the bug.
        assert_eq!(
            PagingMode::derive_literal(cr0, cr4, efer),
            PagingMode::ThirtyTwoBit
        );
    }

    #[test]
    fn walk_levels() {
        assert_eq!(PagingMode::None.walk_levels(), 0);
        assert_eq!(PagingMode::ThirtyTwoBit.walk_levels(), 2);
        assert_eq!(PagingMode::Pae.walk_levels(), 3);
        assert_eq!(PagingMode::FourLevel.walk_levels(), 4);
        assert_eq!(PagingMode::FiveLevel.walk_levels(), 5);
    }

    #[test]
    fn pdpte_reserved_bits() {
        assert!(Pdpte(0).check().is_ok());
        assert!(Pdpte(Pdpte::P).check().is_ok());
        assert!(Pdpte(Pdpte::P | (1 << 1)).check().is_err());
        assert!(Pdpte(Pdpte::P | (1 << 5)).check().is_err());
        // Reserved bits in a non-present entry are ignored.
        assert!(Pdpte(1 << 5).check().is_ok());
    }
}
