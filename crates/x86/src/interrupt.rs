//! Exceptions, event injection, interruptibility, and activity states.
//!
//! The VMCS guest-state area carries an *activity state* and an
//! *interruptibility state*, and VM entry can inject an event described by
//! the VM-entry interruption-information field. Xen's WAIT-FOR-SIPI hang
//! (paper §5.5.2, bug #4) is an activity-state sanitization failure, so
//! the activity-state rules are modeled carefully here.

use crate::{ArchError, ArchResult, RFlags};

/// An exception/interrupt vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Vector(pub u8);

impl Vector {
    /// Divide error.
    pub const DE: Vector = Vector(0);
    /// Debug exception.
    pub const DB: Vector = Vector(1);
    /// Non-maskable interrupt.
    pub const NMI: Vector = Vector(2);
    /// Breakpoint.
    pub const BP: Vector = Vector(3);
    /// Overflow.
    pub const OF: Vector = Vector(4);
    /// Invalid opcode.
    pub const UD: Vector = Vector(6);
    /// Double fault.
    pub const DF: Vector = Vector(8);
    /// Invalid TSS.
    pub const TS: Vector = Vector(10);
    /// Segment not present.
    pub const NP: Vector = Vector(11);
    /// Stack-segment fault.
    pub const SS: Vector = Vector(12);
    /// General protection fault.
    pub const GP: Vector = Vector(13);
    /// Page fault.
    pub const PF: Vector = Vector(14);
    /// Machine check.
    pub const MC: Vector = Vector(18);

    /// Returns `true` if the exception pushes an error code.
    pub const fn has_error_code(self) -> bool {
        matches!(self.0, 8 | 10 | 11 | 12 | 13 | 14 | 17 | 21 | 29 | 30)
    }
}

/// VMCS guest activity state (SDM 24.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u32)]
pub enum ActivityState {
    /// Executing instructions normally.
    #[default]
    Active = 0,
    /// Halted by `hlt`.
    Hlt = 1,
    /// Shutdown after a triple fault; only NMI/SMI/INIT break it.
    Shutdown = 2,
    /// Waiting for a startup IPI — intended for TXT auxiliary processors,
    /// never for ordinary nested guests.
    WaitForSipi = 3,
}

impl ActivityState {
    /// Decodes a raw VMCS field value; values above 3 are reserved.
    pub fn from_raw(raw: u64) -> ArchResult<ActivityState> {
        match raw {
            0 => Ok(ActivityState::Active),
            1 => Ok(ActivityState::Hlt),
            2 => Ok(ActivityState::Shutdown),
            3 => Ok(ActivityState::WaitForSipi),
            other => Err(ArchError::new(
                "activity.reserved",
                format!("activity state {other} is reserved"),
            )),
        }
    }

    /// Returns `true` for states a well-behaved L1 hypervisor would ever
    /// place in a nested guest's VMCS — the states an L0 must *sanitize*
    /// to, per the Xen WAIT-FOR-SIPI fix.
    pub const fn safe_for_nested(self) -> bool {
        matches!(self, ActivityState::Active | ActivityState::Hlt)
    }
}

/// VMCS interruptibility-state bits (SDM 24.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Interruptibility(pub u32);

impl Interruptibility {
    /// Blocking by `sti`.
    pub const STI: u32 = 1 << 0;
    /// Blocking by `mov ss` / `pop ss`.
    pub const MOV_SS: u32 = 1 << 1;
    /// Blocking by SMI.
    pub const SMI: u32 = 1 << 2;
    /// Blocking by NMI.
    pub const NMI: u32 = 1 << 3;
    /// Enclave interruption (SGX).
    pub const ENCLAVE: u32 = 1 << 4;
    /// Defined bits; the rest are reserved-zero.
    pub const DEFINED: u32 = 0x1f;

    /// Checks the VM-entry rules for interruptibility state in
    /// combination with `RFLAGS.IF` (SDM 26.3.1.5, excerpt sufficient for
    /// the modeled hypervisors).
    pub fn check(self, rflags: RFlags) -> ArchResult {
        if self.0 & !Self::DEFINED != 0 {
            return Err(ArchError::new(
                "intr.reserved",
                format!(
                    "reserved interruptibility bits set: {:#x}",
                    self.0 & !Self::DEFINED
                ),
            ));
        }
        if self.0 & Self::STI != 0 && self.0 & Self::MOV_SS != 0 {
            return Err(ArchError::new(
                "intr.sti_and_movss",
                "STI and MOV-SS blocking cannot both be set",
            ));
        }
        if self.0 & Self::STI != 0 && !rflags.has(RFlags::IF) {
            return Err(ArchError::new(
                "intr.sti_requires_if",
                "STI blocking requires RFLAGS.IF=1",
            ));
        }
        Ok(())
    }

    /// Rounds to a value that passes [`Interruptibility::check`] for the
    /// given `rflags`.
    pub fn rounded(self, rflags: RFlags) -> Self {
        let mut v = self.0 & Self::DEFINED;
        if v & Self::STI != 0 && (v & Self::MOV_SS != 0 || !rflags.has(RFlags::IF)) {
            v &= !Self::STI;
        }
        Interruptibility(v)
    }
}

/// Event-delivery type in the VM-entry interruption-information field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum EventType {
    /// External interrupt.
    External = 0,
    /// Non-maskable interrupt.
    Nmi = 2,
    /// Hardware exception.
    HardException = 3,
    /// Software interrupt (`int n`).
    SoftInt = 4,
    /// Privileged software exception (`int1`).
    PrivSoftException = 5,
    /// Software exception (`int3`/`into`).
    SoftException = 6,
    /// Other event (e.g. MTF).
    Other = 7,
}

impl EventType {
    /// Decodes the 3-bit type field; type 1 is reserved.
    pub fn from_raw(raw: u32) -> ArchResult<EventType> {
        match raw & 7 {
            0 => Ok(EventType::External),
            2 => Ok(EventType::Nmi),
            3 => Ok(EventType::HardException),
            4 => Ok(EventType::SoftInt),
            5 => Ok(EventType::PrivSoftException),
            6 => Ok(EventType::SoftException),
            7 => Ok(EventType::Other),
            _ => Err(ArchError::new(
                "event.type_reserved",
                "event type 1 is reserved",
            )),
        }
    }
}

/// The VM-entry interruption-information field (SDM 24.8.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EventInjection(pub u32);

impl EventInjection {
    /// Valid bit (bit 31).
    pub const VALID: u32 = 1 << 31;
    /// Deliver-error-code bit (bit 11).
    pub const DELIVER_EC: u32 = 1 << 11;

    /// Builds an injection field.
    pub const fn build(vector: Vector, typ: EventType, deliver_ec: bool, valid: bool) -> Self {
        EventInjection(
            vector.0 as u32
                | ((typ as u32) << 8)
                | (if deliver_ec { Self::DELIVER_EC } else { 0 })
                | (if valid { Self::VALID } else { 0 }),
        )
    }

    /// Returns the vector field.
    pub const fn vector(self) -> Vector {
        Vector((self.0 & 0xff) as u8)
    }

    /// Returns `true` if the valid bit is set.
    pub const fn valid(self) -> bool {
        self.0 & Self::VALID != 0
    }

    /// Checks the VM-entry rules for the interruption-information field
    /// (SDM 26.2.1.3, modeled subset): reserved bits zero, type not
    /// reserved, NMI implies vector 2, hardware exceptions imply vector
    /// ≤ 31, and error-code delivery only for vectors that define one.
    pub fn check(self) -> ArchResult {
        if !self.valid() {
            return Ok(());
        }
        let reserved = self.0 & 0x7fff_f000;
        if reserved != 0 {
            return Err(ArchError::new(
                "event.reserved",
                format!("reserved interruption-info bits set: {reserved:#x}"),
            ));
        }
        let typ = EventType::from_raw((self.0 >> 8) & 7)?;
        let vec = self.vector();
        match typ {
            EventType::Nmi if vec != Vector::NMI => Err(ArchError::new(
                "event.nmi_vector",
                "NMI injection requires vector 2",
            )),
            EventType::HardException if vec.0 > 31 => Err(ArchError::new(
                "event.exception_vector",
                format!("hardware exception vector {} out of range", vec.0),
            )),
            EventType::HardException if self.0 & Self::DELIVER_EC != 0 && !vec.has_error_code() => {
                Err(ArchError::new(
                    "event.error_code",
                    format!("vector {} does not deliver an error code", vec.0),
                ))
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_error_codes() {
        assert!(Vector::DF.has_error_code());
        assert!(Vector::GP.has_error_code());
        assert!(Vector::PF.has_error_code());
        assert!(!Vector::DE.has_error_code());
        assert!(!Vector::NMI.has_error_code());
    }

    #[test]
    fn activity_state_decoding() {
        assert_eq!(ActivityState::from_raw(0).unwrap(), ActivityState::Active);
        assert_eq!(
            ActivityState::from_raw(3).unwrap(),
            ActivityState::WaitForSipi
        );
        assert!(ActivityState::from_raw(4).is_err());
    }

    #[test]
    fn nested_safe_activity_states() {
        assert!(ActivityState::Active.safe_for_nested());
        assert!(ActivityState::Hlt.safe_for_nested());
        assert!(!ActivityState::Shutdown.safe_for_nested());
        assert!(!ActivityState::WaitForSipi.safe_for_nested());
    }

    #[test]
    fn interruptibility_rules() {
        let if_set = RFlags::new(RFlags::RESERVED_ONE | RFlags::IF);
        let if_clear = RFlags::default();
        assert!(Interruptibility(0).check(if_clear).is_ok());
        assert!(Interruptibility(Interruptibility::STI)
            .check(if_set)
            .is_ok());
        assert_eq!(
            Interruptibility(Interruptibility::STI)
                .check(if_clear)
                .unwrap_err()
                .rule,
            "intr.sti_requires_if"
        );
        assert_eq!(
            Interruptibility(Interruptibility::STI | Interruptibility::MOV_SS)
                .check(if_set)
                .unwrap_err()
                .rule,
            "intr.sti_and_movss"
        );
        assert_eq!(
            Interruptibility(1 << 9).check(if_set).unwrap_err().rule,
            "intr.reserved"
        );
    }

    #[test]
    fn interruptibility_rounding() {
        let if_clear = RFlags::default();
        for raw in [0u32, u32::MAX, Interruptibility::STI, 0x3ff] {
            let r = Interruptibility(raw).rounded(if_clear);
            assert!(r.check(if_clear).is_ok(), "raw={raw:#x}");
        }
    }

    #[test]
    fn event_injection_checks() {
        let ok = EventInjection::build(Vector::GP, EventType::HardException, true, true);
        assert!(ok.check().is_ok());

        let bad_nmi = EventInjection::build(Vector::GP, EventType::Nmi, false, true);
        assert_eq!(bad_nmi.check().unwrap_err().rule, "event.nmi_vector");

        let bad_ec = EventInjection::build(Vector::UD, EventType::HardException, true, true);
        assert_eq!(bad_ec.check().unwrap_err().rule, "event.error_code");

        let bad_vec = EventInjection::build(Vector(99), EventType::HardException, false, true);
        assert_eq!(bad_vec.check().unwrap_err().rule, "event.exception_vector");

        // Invalid bit clear: no checks apply.
        let invalid = EventInjection::build(Vector(99), EventType::Nmi, true, false);
        assert!(invalid.check().is_ok());

        let reserved = EventInjection(EventInjection::VALID | (1 << 13));
        assert_eq!(reserved.check().unwrap_err().rule, "event.reserved");
    }
}
