//! Debug registers `DR6` and `DR7`.
//!
//! VM entry checks `DR7` when the "load debug controls" entry control is
//! set (bits 63:32 must be zero), and `DR6`/`DR7` reserved-bit patterns are
//! part of the guest state that the L0 hypervisor must sanitize when
//! emulating nested entries.

use crate::{ArchError, ArchResult};

/// The `DR6` debug status register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dr6(pub u64);

impl Default for Dr6 {
    fn default() -> Self {
        Dr6(Self::RESERVED_ONE)
    }
}

impl Dr6 {
    /// Breakpoint condition detected bits `B0..B3`.
    pub const B_MASK: u64 = 0xf;
    /// Debug register access detected.
    pub const BD: u64 = 1 << 13;
    /// Single step.
    pub const BS: u64 = 1 << 14;
    /// Task switch.
    pub const BT: u64 = 1 << 15;
    /// RTM transaction region (reads as 1 outside RTM).
    pub const RTM: u64 = 1 << 16;
    /// Bits that always read as one on the modeled part (bits 4..=11 and
    /// bit 12 clear; 31:17 one except RTM semantics simplified).
    pub const RESERVED_ONE: u64 = 0xffff_0ff0;

    /// Creates a `DR6` value without validation.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Checks the canonical `DR6` pattern: upper 32 bits zero.
    pub fn check(self) -> ArchResult {
        if self.0 >> 32 != 0 {
            return Err(ArchError::new("dr6.upper", "DR6 bits 63:32 must be zero"));
        }
        Ok(())
    }

    /// Rounds to a value that passes [`Dr6::check`] and has the
    /// reserved-one bits set.
    pub fn rounded(self) -> Self {
        Dr6((self.0 & 0xffff_ffff) | Self::RESERVED_ONE)
    }
}

/// The `DR7` debug control register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dr7(pub u64);

impl Default for Dr7 {
    fn default() -> Self {
        Dr7(Self::RESERVED_ONE)
    }
}

impl Dr7 {
    /// Bit 10 always reads as 1.
    pub const RESERVED_ONE: u64 = 1 << 10;
    /// General detect enable.
    pub const GD: u64 = 1 << 13;

    /// Creates a `DR7` value without validation.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Checks the VM-entry rule for `DR7` (SDM 26.3.1.1): bits 63:32 must
    /// be zero when the entry loads debug controls.
    pub fn check_vmx(self) -> ArchResult {
        if self.0 >> 32 != 0 {
            return Err(ArchError::new("dr7.upper", "DR7 bits 63:32 must be zero"));
        }
        Ok(())
    }

    /// Rounds to a value that passes [`Dr7::check_vmx`] with bit 10 set.
    pub fn rounded(self) -> Self {
        Dr7((self.0 & 0xffff_ffff) | Self::RESERVED_ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dr6_upper_bits_rejected() {
        assert!(Dr6::default().check().is_ok());
        assert_eq!(Dr6::new(1 << 32).check().unwrap_err().rule, "dr6.upper");
    }

    #[test]
    fn dr6_rounding() {
        let r = Dr6::new(u64::MAX).rounded();
        assert!(r.check().is_ok());
        assert_eq!(r.0 & Dr6::RESERVED_ONE, Dr6::RESERVED_ONE);
        assert_eq!(r.rounded(), r);
    }

    #[test]
    fn dr7_vmx_check_and_rounding() {
        assert!(Dr7::default().check_vmx().is_ok());
        assert_eq!(Dr7::new(1 << 40).check_vmx().unwrap_err().rule, "dr7.upper");
        let r = Dr7::new((1 << 40) | Dr7::GD).rounded();
        assert!(r.check_vmx().is_ok());
        assert!(r.0 & Dr7::GD != 0, "defined bits preserved");
        assert!(r.0 & Dr7::RESERVED_ONE != 0);
    }
}
