//! The `IA32_EFER` / AMD `EFER` model-specific register.
//!
//! `EFER` couples long mode to paging: `LMA` must always equal
//! `LME & CR0.PG`. Two of the paper's discovered bugs (vkvm bug #1 and the
//! Xen nested-SVM `LMA && !PG` bug) are violations of exactly this
//! consistency family, so the rule lives here as a first-class check.

use crate::{ArchError, ArchResult, Cr0, Cr4};

/// The extended feature enable register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Efer(pub u64);

impl Efer {
    /// System Call Extensions (SYSCALL/SYSRET enable).
    pub const SCE: u64 = 1 << 0;
    /// Long Mode Enable.
    pub const LME: u64 = 1 << 8;
    /// Long Mode Active (read-only to software; set by the CPU).
    pub const LMA: u64 = 1 << 10;
    /// No-Execute Enable.
    pub const NXE: u64 = 1 << 11;
    /// Secure Virtual Machine Enable (AMD-V).
    pub const SVME: u64 = 1 << 12;
    /// Long Mode Segment Limit Enable (AMD).
    pub const LMSLE: u64 = 1 << 13;
    /// Fast FXSAVE/FXRSTOR (AMD).
    pub const FFXSR: u64 = 1 << 14;
    /// Translation Cache Extension (AMD).
    pub const TCE: u64 = 1 << 15;

    /// All architecturally defined bits.
    pub const DEFINED: u64 = Self::SCE
        | Self::LME
        | Self::LMA
        | Self::NXE
        | Self::SVME
        | Self::LMSLE
        | Self::FFXSR
        | Self::TCE;

    /// Creates an `EFER` from a raw value without validation.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns `true` if `bit` (one of the associated constants) is set.
    pub const fn has(self, bit: u64) -> bool {
        self.0 & bit != 0
    }

    /// Returns the reserved bits that are (illegally) set.
    pub const fn reserved_set(self) -> u64 {
        self.0 & !Self::DEFINED
    }

    /// Checks that no reserved bits are set (a `wrmsr` would `#GP`).
    pub fn check_reserved(self) -> ArchResult {
        if self.reserved_set() != 0 {
            return Err(ArchError::new(
                "efer.reserved",
                format!("reserved EFER bits set: {:#x}", self.reserved_set()),
            ));
        }
        Ok(())
    }

    /// Checks the long-mode consistency triple (`EFER.LMA == EFER.LME &&
    /// CR0.PG`) together with the PAE requirement of IA-32e mode.
    ///
    /// This is the constraint family behind CVE-2023-30456 (KVM trusted
    /// `CR4.PAE` literally where the CPU silently assumes it) and Xen issue
    /// #216 (`LMA && !PG` VMCB accepted by `vmrun`).
    pub fn check_long_mode(self, cr0: Cr0, cr4: Cr4) -> ArchResult {
        let lme = self.has(Self::LME);
        let lma = self.has(Self::LMA);
        let pg = cr0.has(Cr0::PG);
        if lma != (lme && pg) {
            return Err(ArchError::new(
                "efer.lma_consistency",
                format!(
                    "EFER.LMA={} but EFER.LME={} && CR0.PG={}",
                    lma as u8, lme as u8, pg as u8
                ),
            ));
        }
        if lma && pg && !cr4.has(Cr4::PAE) {
            return Err(ArchError::new(
                "efer.lme_requires_pae",
                "IA-32e paging active but CR4.PAE=0",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_bits() {
        assert!(Efer::new(Efer::SCE | Efer::LME | Efer::NXE)
            .check_reserved()
            .is_ok());
        assert_eq!(
            Efer::new(1 << 1).check_reserved().unwrap_err().rule,
            "efer.reserved"
        );
        assert!(Efer::new(1 << 9).check_reserved().is_err());
        assert!(Efer::new(1 << 16).check_reserved().is_err());
    }

    #[test]
    fn long_mode_consistent_configurations() {
        let long = Efer::new(Efer::LME | Efer::LMA);
        let cr0 = Cr0::new(Cr0::PE | Cr0::PG);
        let cr4 = Cr4::new(Cr4::PAE);
        assert!(long.check_long_mode(cr0, cr4).is_ok());

        // Legacy mode: nothing set.
        assert!(Efer::new(0)
            .check_long_mode(Cr0::new(Cr0::PE), Cr4::new(0))
            .is_ok());

        // LME set but paging off: LMA must be clear.
        assert!(Efer::new(Efer::LME)
            .check_long_mode(Cr0::new(Cr0::PE), Cr4::new(0))
            .is_ok());
    }

    #[test]
    fn lma_without_pg_rejected() {
        let efer = Efer::new(Efer::LME | Efer::LMA);
        let err = efer
            .check_long_mode(Cr0::new(Cr0::PE), Cr4::new(Cr4::PAE))
            .unwrap_err();
        assert_eq!(err.rule, "efer.lma_consistency");
    }

    #[test]
    fn long_mode_without_pae_rejected() {
        let efer = Efer::new(Efer::LME | Efer::LMA);
        let err = efer
            .check_long_mode(Cr0::new(Cr0::PE | Cr0::PG), Cr4::new(0))
            .unwrap_err();
        assert_eq!(err.rule, "efer.lme_requires_pae");
    }
}
