//! CPU identification and the virtualization feature model.
//!
//! The vCPU configurator's search space is the power set of these features
//! (paper §3.5). A [`FeatureSet`] is the hypervisor-independent
//! representation that the per-hypervisor adapters translate into module
//! parameters and VM options.

use std::fmt;

/// Processor vendor, selecting VT-x or AMD-V semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuVendor {
    /// Intel: VT-x / VMX / VMCS.
    Intel,
    /// AMD: AMD-V / SVM / VMCB.
    Amd,
}

impl fmt::Display for CpuVendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuVendor::Intel => write!(f, "Intel"),
            CpuVendor::Amd => write!(f, "AMD"),
        }
    }
}

/// A hardware-assisted virtualization feature that the vCPU configurator
/// can enable or disable.
///
/// The list merges the Intel VT-x and AMD-V feature menus; each feature
/// records which vendor(s) expose it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CpuFeature {
    /// VMX instruction set itself (Intel).
    Vmx = 0,
    /// SVM instruction set itself (AMD).
    Svm = 1,
    /// Extended page tables (Intel nested paging).
    Ept = 2,
    /// Unrestricted guest (real-mode execution under EPT).
    UnrestrictedGuest = 3,
    /// Virtual-processor identifiers.
    Vpid = 4,
    /// VMCS shadowing.
    VmcsShadowing = 5,
    /// APIC-register virtualization / APICv.
    Apicv = 6,
    /// Virtual NMIs.
    VirtualNmi = 7,
    /// Posted interrupts.
    PostedInterrupts = 8,
    /// Intel Processor Trace exposure to guests.
    IntelPt = 9,
    /// Software Guard Extensions exposure.
    Sgx = 10,
    /// Hyper-V enlightened VMCS emulation.
    EnlightenedVmcs = 11,
    /// AMD nested paging (NPT).
    NestedPaging = 12,
    /// AMD Advanced Virtual Interrupt Controller.
    Avic = 13,
    /// AMD virtual GIF.
    VGif = 14,
    /// AMD virtual VMLOAD/VMSAVE.
    VirtualVmloadVmsave = 15,
    /// AMD decode assists.
    DecodeAssists = 16,
    /// AMD LBR virtualization.
    Lbrv = 17,
    /// AMD pause filter.
    PauseFilter = 18,
    /// TSC scaling (both vendors).
    TscScaling = 19,
    /// AMD flush-by-ASID.
    FlushByAsid = 20,
    /// AMD next-RIP save.
    NextRipSave = 21,
}

impl CpuFeature {
    /// Every feature, in bit order.
    pub const ALL: [CpuFeature; 22] = [
        CpuFeature::Vmx,
        CpuFeature::Svm,
        CpuFeature::Ept,
        CpuFeature::UnrestrictedGuest,
        CpuFeature::Vpid,
        CpuFeature::VmcsShadowing,
        CpuFeature::Apicv,
        CpuFeature::VirtualNmi,
        CpuFeature::PostedInterrupts,
        CpuFeature::IntelPt,
        CpuFeature::Sgx,
        CpuFeature::EnlightenedVmcs,
        CpuFeature::NestedPaging,
        CpuFeature::Avic,
        CpuFeature::VGif,
        CpuFeature::VirtualVmloadVmsave,
        CpuFeature::DecodeAssists,
        CpuFeature::Lbrv,
        CpuFeature::PauseFilter,
        CpuFeature::TscScaling,
        CpuFeature::FlushByAsid,
        CpuFeature::NextRipSave,
    ];

    /// Bit index inside a [`FeatureSet`].
    pub const fn bit(self) -> u32 {
        self as u32
    }

    /// Returns `true` if `vendor` exposes this feature at all.
    pub const fn available_on(self, vendor: CpuVendor) -> bool {
        match self {
            CpuFeature::Vmx
            | CpuFeature::Ept
            | CpuFeature::UnrestrictedGuest
            | CpuFeature::Vpid
            | CpuFeature::VmcsShadowing
            | CpuFeature::Apicv
            | CpuFeature::VirtualNmi
            | CpuFeature::PostedInterrupts
            | CpuFeature::IntelPt
            | CpuFeature::Sgx
            | CpuFeature::EnlightenedVmcs => matches!(vendor, CpuVendor::Intel),
            CpuFeature::Svm
            | CpuFeature::NestedPaging
            | CpuFeature::Avic
            | CpuFeature::VGif
            | CpuFeature::VirtualVmloadVmsave
            | CpuFeature::DecodeAssists
            | CpuFeature::Lbrv
            | CpuFeature::PauseFilter
            | CpuFeature::FlushByAsid
            | CpuFeature::NextRipSave => matches!(vendor, CpuVendor::Amd),
            CpuFeature::TscScaling => true,
        }
    }

    /// Kernel-module-parameter-style name used by the KVM adapter.
    pub const fn param_name(self) -> &'static str {
        match self {
            CpuFeature::Vmx => "vmx",
            CpuFeature::Svm => "svm",
            CpuFeature::Ept => "ept",
            CpuFeature::UnrestrictedGuest => "unrestricted_guest",
            CpuFeature::Vpid => "vpid",
            CpuFeature::VmcsShadowing => "enable_shadow_vmcs",
            CpuFeature::Apicv => "enable_apicv",
            CpuFeature::VirtualNmi => "vnmi",
            CpuFeature::PostedInterrupts => "posted_intr",
            CpuFeature::IntelPt => "pt_mode",
            CpuFeature::Sgx => "sgx",
            CpuFeature::EnlightenedVmcs => "evmcs",
            CpuFeature::NestedPaging => "npt",
            CpuFeature::Avic => "avic",
            CpuFeature::VGif => "vgif",
            CpuFeature::VirtualVmloadVmsave => "vls",
            CpuFeature::DecodeAssists => "decode_assists",
            CpuFeature::Lbrv => "lbrv",
            CpuFeature::PauseFilter => "pause_filter",
            CpuFeature::TscScaling => "tsc_scaling",
            CpuFeature::FlushByAsid => "flush_by_asid",
            CpuFeature::NextRipSave => "nrips",
        }
    }
}

/// A set of enabled [`CpuFeature`]s, stored as a bit array — the exact
/// representation the vCPU configurator mutates (paper §4.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FeatureSet(pub u32);

impl FeatureSet {
    /// The empty set.
    pub const fn empty() -> Self {
        FeatureSet(0)
    }

    /// Everything a given vendor can offer.
    pub fn full(vendor: CpuVendor) -> Self {
        let mut s = FeatureSet::empty();
        for f in CpuFeature::ALL {
            if f.available_on(vendor) {
                s.insert(f);
            }
        }
        s
    }

    /// The paper's *default* configuration: the virtualization base
    /// feature plus nested paging and the common accelerations, matching
    /// the hypervisors' out-of-the-box module parameters.
    pub fn default_for(vendor: CpuVendor) -> Self {
        let mut s = FeatureSet::empty();
        match vendor {
            CpuVendor::Intel => {
                for f in [
                    CpuFeature::Vmx,
                    CpuFeature::Ept,
                    CpuFeature::UnrestrictedGuest,
                    CpuFeature::Vpid,
                    CpuFeature::VirtualNmi,
                    CpuFeature::TscScaling,
                ] {
                    s.insert(f);
                }
            }
            CpuVendor::Amd => {
                for f in [
                    CpuFeature::Svm,
                    CpuFeature::NestedPaging,
                    CpuFeature::PauseFilter,
                    CpuFeature::NextRipSave,
                    CpuFeature::TscScaling,
                ] {
                    s.insert(f);
                }
            }
        }
        s
    }

    /// Inserts a feature.
    pub fn insert(&mut self, f: CpuFeature) {
        self.0 |= 1 << f.bit();
    }

    /// Removes a feature.
    pub fn remove(&mut self, f: CpuFeature) {
        self.0 &= !(1 << f.bit());
    }

    /// Membership test.
    pub const fn contains(self, f: CpuFeature) -> bool {
        self.0 & (1 << f.bit()) != 0
    }

    /// Iterates over the enabled features.
    pub fn iter(self) -> impl Iterator<Item = CpuFeature> {
        CpuFeature::ALL
            .into_iter()
            .filter(move |f| self.contains(*f))
    }

    /// Number of enabled features.
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Returns `true` if no feature is enabled.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Restricts the set to features the vendor actually exposes and
    /// enforces the dependency rules (e.g. unrestricted guest requires
    /// EPT; AVIC/VGIF require SVM; posted interrupts require APICv).
    pub fn sanitized(self, vendor: CpuVendor) -> Self {
        let mut s = FeatureSet(self.0);
        for f in CpuFeature::ALL {
            if s.contains(f) && !f.available_on(vendor) {
                s.remove(f);
            }
        }
        if !s.contains(CpuFeature::Ept) {
            s.remove(CpuFeature::UnrestrictedGuest);
        }
        if !s.contains(CpuFeature::Apicv) {
            s.remove(CpuFeature::PostedInterrupts);
        }
        if vendor == CpuVendor::Amd && !s.contains(CpuFeature::Svm) {
            // Without SVM the rest of the AMD menu is moot.
            for f in [
                CpuFeature::NestedPaging,
                CpuFeature::Avic,
                CpuFeature::VGif,
                CpuFeature::VirtualVmloadVmsave,
                CpuFeature::DecodeAssists,
                CpuFeature::Lbrv,
                CpuFeature::PauseFilter,
                CpuFeature::FlushByAsid,
                CpuFeature::NextRipSave,
            ] {
                s.remove(f);
            }
        }
        if vendor == CpuVendor::Intel && !s.contains(CpuFeature::Vmx) {
            for f in [
                CpuFeature::Ept,
                CpuFeature::UnrestrictedGuest,
                CpuFeature::Vpid,
                CpuFeature::VmcsShadowing,
                CpuFeature::Apicv,
                CpuFeature::VirtualNmi,
                CpuFeature::PostedInterrupts,
                CpuFeature::IntelPt,
                CpuFeature::Sgx,
                CpuFeature::EnlightenedVmcs,
            ] {
                s.remove(f);
            }
        }
        s
    }
}

impl fmt::Debug for FeatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.iter().map(|x| x.param_name()).collect();
        write!(f, "FeatureSet({})", names.join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = FeatureSet::empty();
        assert!(s.is_empty());
        s.insert(CpuFeature::Ept);
        assert!(s.contains(CpuFeature::Ept));
        assert_eq!(s.len(), 1);
        s.remove(CpuFeature::Ept);
        assert!(!s.contains(CpuFeature::Ept));
    }

    #[test]
    fn defaults_are_vendor_consistent() {
        let intel = FeatureSet::default_for(CpuVendor::Intel);
        assert!(intel.contains(CpuFeature::Vmx));
        assert!(intel.contains(CpuFeature::Ept));
        assert!(!intel.contains(CpuFeature::Svm));
        assert_eq!(intel.sanitized(CpuVendor::Intel), intel);

        let amd = FeatureSet::default_for(CpuVendor::Amd);
        assert!(amd.contains(CpuFeature::Svm));
        assert!(amd.contains(CpuFeature::NestedPaging));
        assert!(!amd.contains(CpuFeature::Vmx));
        assert_eq!(amd.sanitized(CpuVendor::Amd), amd);
    }

    #[test]
    fn sanitize_drops_foreign_features() {
        let mut s = FeatureSet::default_for(CpuVendor::Intel);
        s.insert(CpuFeature::Avic);
        let s = s.sanitized(CpuVendor::Intel);
        assert!(!s.contains(CpuFeature::Avic));
    }

    #[test]
    fn sanitize_enforces_dependencies() {
        let mut s = FeatureSet::empty();
        s.insert(CpuFeature::Vmx);
        s.insert(CpuFeature::UnrestrictedGuest); // without EPT
        let s = s.sanitized(CpuVendor::Intel);
        assert!(!s.contains(CpuFeature::UnrestrictedGuest));

        let mut t = FeatureSet::empty();
        t.insert(CpuFeature::Avic); // without SVM
        let t = t.sanitized(CpuVendor::Amd);
        assert!(t.is_empty());
    }

    #[test]
    fn sanitize_without_base_feature_clears_menu() {
        let mut s = FeatureSet::full(CpuVendor::Intel);
        s.remove(CpuFeature::Vmx);
        let s = s.sanitized(CpuVendor::Intel);
        assert!(!s.contains(CpuFeature::Ept));
        assert!(!s.contains(CpuFeature::Vpid));
        // Vendor-neutral TSC scaling survives.
        assert!(s.contains(CpuFeature::TscScaling));
    }

    #[test]
    fn full_sets_disjoint_virtualization_bases() {
        assert!(FeatureSet::full(CpuVendor::Intel).contains(CpuFeature::Vmx));
        assert!(!FeatureSet::full(CpuVendor::Intel).contains(CpuFeature::Svm));
        assert!(FeatureSet::full(CpuVendor::Amd).contains(CpuFeature::Svm));
    }
}
