//! Descriptor-table registers (`GDTR`/`IDTR`).

use crate::addr::VirtAddr;
use crate::{ArchError, ArchResult};

/// A descriptor-table register: base and limit, as stored in the VMCS
/// guest-state area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DescriptorTable {
    /// Linear base address of the table.
    pub base: u64,
    /// Table limit. The VMCS stores 32 bits but VM entry requires bits
    /// 31:16 to be zero.
    pub limit: u32,
}

impl DescriptorTable {
    /// Creates a descriptor-table register value.
    pub const fn new(base: u64, limit: u32) -> Self {
        Self { base, limit }
    }

    /// VM-entry checks (SDM 26.3.1.3): canonical base, limit bits 31:16
    /// zero.
    pub fn check_vmx(&self, name: &'static str) -> ArchResult {
        if !VirtAddr(self.base).is_canonical() {
            return Err(ArchError::new(
                "dtable.base_canonical",
                format!("{name} base {:#x} non-canonical", self.base),
            ));
        }
        if self.limit >> 16 != 0 {
            return Err(ArchError::new(
                "dtable.limit_upper",
                format!("{name} limit {:#x} has bits 31:16 set", self.limit),
            ));
        }
        Ok(())
    }

    /// Rounds to a value that passes [`DescriptorTable::check_vmx`].
    pub fn rounded(&self) -> Self {
        DescriptorTable {
            base: VirtAddr(self.base).canonicalized().0,
            limit: self.limit & 0xffff,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_table_passes() {
        assert!(DescriptorTable::new(0xffff_8000_0000_1000, 0xfff)
            .check_vmx("GDTR")
            .is_ok());
    }

    #[test]
    fn non_canonical_base_rejected() {
        let err = DescriptorTable::new(0x9000_0000_0000_0000, 0)
            .check_vmx("GDTR")
            .unwrap_err();
        assert_eq!(err.rule, "dtable.base_canonical");
    }

    #[test]
    fn limit_upper_bits_rejected() {
        let err = DescriptorTable::new(0, 0x10000)
            .check_vmx("IDTR")
            .unwrap_err();
        assert_eq!(err.rule, "dtable.limit_upper");
    }

    #[test]
    fn rounding_fixes_everything() {
        let t = DescriptorTable::new(0x9000_0000_0000_0000, 0xffff_0000).rounded();
        assert!(t.check_vmx("GDTR").is_ok());
        assert_eq!(t.rounded(), t);
    }
}
