//! The `RFLAGS` register.
//!
//! VMX guest-state checks require bit 1 set, the reserved bits clear, and
//! coupling rules between `VM`, `IF`, and pending-event injection. The
//! type offers both the check and the canonicalizing *rounding* used by the
//! validator.

use crate::{ArchError, ArchResult};

/// The `RFLAGS` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RFlags(pub u64);

impl Default for RFlags {
    fn default() -> Self {
        RFlags(Self::RESERVED_ONE)
    }
}

impl RFlags {
    /// Carry flag.
    pub const CF: u64 = 1 << 0;
    /// Bit 1: reserved, always reads as 1.
    pub const RESERVED_ONE: u64 = 1 << 1;
    /// Parity flag.
    pub const PF: u64 = 1 << 2;
    /// Auxiliary carry flag.
    pub const AF: u64 = 1 << 4;
    /// Zero flag.
    pub const ZF: u64 = 1 << 6;
    /// Sign flag.
    pub const SF: u64 = 1 << 7;
    /// Trap flag (single-step).
    pub const TF: u64 = 1 << 8;
    /// Interrupt enable flag.
    pub const IF: u64 = 1 << 9;
    /// Direction flag.
    pub const DF: u64 = 1 << 10;
    /// Overflow flag.
    pub const OF: u64 = 1 << 11;
    /// I/O privilege level (2 bits).
    pub const IOPL: u64 = 3 << 12;
    /// Nested task.
    pub const NT: u64 = 1 << 14;
    /// Resume flag.
    pub const RF: u64 = 1 << 16;
    /// Virtual-8086 mode.
    pub const VM: u64 = 1 << 17;
    /// Alignment check / access control.
    pub const AC: u64 = 1 << 18;
    /// Virtual interrupt flag.
    pub const VIF: u64 = 1 << 19;
    /// Virtual interrupt pending.
    pub const VIP: u64 = 1 << 20;
    /// CPUID-available flag.
    pub const ID: u64 = 1 << 21;

    /// All writable/defined bits (excluding the always-one bit 1).
    pub const DEFINED: u64 = Self::CF
        | Self::PF
        | Self::AF
        | Self::ZF
        | Self::SF
        | Self::TF
        | Self::IF
        | Self::DF
        | Self::OF
        | Self::IOPL
        | Self::NT
        | Self::RF
        | Self::VM
        | Self::AC
        | Self::VIF
        | Self::VIP
        | Self::ID;

    /// Creates an `RFLAGS` value without validation.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns `true` if `bit` (one of the associated constants) is set.
    pub const fn has(self, bit: u64) -> bool {
        self.0 & bit != 0
    }

    /// Returns the reserved-zero bits that are (illegally) set.
    pub const fn reserved_set(self) -> u64 {
        self.0 & !(Self::DEFINED | Self::RESERVED_ONE)
    }

    /// Checks the VMX guest-state rules for `RFLAGS` in isolation:
    /// reserved-zero bits clear and bit 1 set (SDM 26.3.1.4).
    pub fn check_vmx(self) -> ArchResult {
        if self.reserved_set() != 0 {
            return Err(ArchError::new(
                "rflags.reserved",
                format!("reserved RFLAGS bits set: {:#x}", self.reserved_set()),
            ));
        }
        if !self.has(Self::RESERVED_ONE) {
            return Err(ArchError::new("rflags.bit1", "RFLAGS bit 1 must be 1"));
        }
        Ok(())
    }

    /// Rounds the value to one that passes [`RFlags::check_vmx`], keeping
    /// every defined bit as-is.
    pub fn rounded(self) -> Self {
        RFlags((self.0 & (Self::DEFINED | Self::RESERVED_ONE)) | Self::RESERVED_ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_passes() {
        assert!(RFlags::default().check_vmx().is_ok());
    }

    #[test]
    fn reserved_bits_rejected() {
        assert_eq!(
            RFlags::new(0x2 | (1 << 3)).check_vmx().unwrap_err().rule,
            "rflags.reserved"
        );
        assert!(RFlags::new(0x2 | (1 << 5)).check_vmx().is_err());
        assert!(RFlags::new(0x2 | (1 << 15)).check_vmx().is_err());
        assert!(RFlags::new(0x2 | (1 << 22)).check_vmx().is_err());
        assert!(RFlags::new(0x2 | (1u64 << 63)).check_vmx().is_err());
    }

    #[test]
    fn bit1_required() {
        assert_eq!(RFlags::new(0).check_vmx().unwrap_err().rule, "rflags.bit1");
    }

    #[test]
    fn rounding_fixes_all_violations_and_is_idempotent() {
        for raw in [0u64, u64::MAX, 0xdead_beef, 1 << 15] {
            let r = RFlags::new(raw).rounded();
            assert!(r.check_vmx().is_ok(), "raw {raw:#x}");
            assert_eq!(r.rounded(), r);
        }
    }

    #[test]
    fn rounding_preserves_defined_bits() {
        let r = RFlags::new(RFlags::IF | RFlags::VM | (1 << 3)).rounded();
        assert!(r.has(RFlags::IF));
        assert!(r.has(RFlags::VM));
        assert_eq!(r.reserved_set(), 0);
    }
}
