//! Segmentation: selectors, cached segment registers, and the VMX
//! access-rights format.
//!
//! The VMCS guest-state area stores each segment register as a quadruple
//! (selector, base, limit, access rights). The access-rights field uses
//! the VMX encoding (SDM 24.4.1), which is also the layout Bochs's
//! `VMenterLoadCheckGuestState` operates on — and the layout in which the
//! authors found (and fixed) two Bochs validation bugs.

use crate::addr::VirtAddr;
use crate::{ArchError, ArchResult};

/// A segment selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Selector(pub u16);

impl Selector {
    /// Creates a selector from index, table indicator, and RPL.
    pub const fn pack(index: u16, ti_ldt: bool, rpl: u8) -> Self {
        Selector((index << 3) | ((ti_ldt as u16) << 2) | (rpl as u16 & 3))
    }

    /// Requested privilege level (bits 1:0).
    pub const fn rpl(self) -> u8 {
        (self.0 & 3) as u8
    }

    /// Table indicator (bit 2): `false` = GDT, `true` = LDT.
    pub const fn ti(self) -> bool {
        self.0 & 4 != 0
    }

    /// Descriptor-table index (bits 15:3).
    pub const fn index(self) -> u16 {
        self.0 >> 3
    }
}

/// Identifies one of the eight segment registers held in the VMCS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegReg {
    /// Code segment.
    Cs,
    /// Stack segment.
    Ss,
    /// Data segment.
    Ds,
    /// Extra segment.
    Es,
    /// `FS` segment.
    Fs,
    /// `GS` segment.
    Gs,
    /// Local descriptor-table register.
    Ldtr,
    /// Task register.
    Tr,
}

impl SegReg {
    /// All segment registers in VMCS encoding order.
    pub const ALL: [SegReg; 8] = [
        SegReg::Es,
        SegReg::Cs,
        SegReg::Ss,
        SegReg::Ds,
        SegReg::Fs,
        SegReg::Gs,
        SegReg::Ldtr,
        SegReg::Tr,
    ];

    /// Short uppercase name, matching SDM notation.
    pub const fn name(self) -> &'static str {
        match self {
            SegReg::Cs => "CS",
            SegReg::Ss => "SS",
            SegReg::Ds => "DS",
            SegReg::Es => "ES",
            SegReg::Fs => "FS",
            SegReg::Gs => "GS",
            SegReg::Ldtr => "LDTR",
            SegReg::Tr => "TR",
        }
    }
}

/// Broad descriptor classification used by the checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Code or data descriptor (`S=1`).
    CodeOrData,
    /// System descriptor (`S=0`), e.g. TSS or LDT.
    System,
}

/// Segment access rights in the 32-bit VMX format.
///
/// Layout (SDM 24.4.1): bits 3:0 type, 4 `S`, 6:5 DPL, 7 `P`, 11:8
/// reserved, 12 AVL, 13 `L`, 14 `D/B`, 15 `G`, 16 unusable, 31:17
/// reserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AccessRights(pub u32);

impl AccessRights {
    /// The "segment unusable" bit (VMX-only concept).
    pub const UNUSABLE: u32 = 1 << 16;
    /// Reserved bits that must be zero when the segment is usable.
    pub const RESERVED: u32 = 0xfffe_0f00;

    /// Creates access rights from a raw VMX-format value.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Builds usable access rights from parts.
    #[allow(clippy::too_many_arguments)] // mirrors the 8 AR bit fields
    pub const fn build(
        typ: u8,
        s: bool,
        dpl: u8,
        present: bool,
        avl: bool,
        l: bool,
        db: bool,
        g: bool,
    ) -> Self {
        AccessRights(
            (typ as u32 & 0xf)
                | ((s as u32) << 4)
                | ((dpl as u32 & 3) << 5)
                | ((present as u32) << 7)
                | ((avl as u32) << 12)
                | ((l as u32) << 13)
                | ((db as u32) << 14)
                | ((g as u32) << 15),
        )
    }

    /// Descriptor type field (bits 3:0).
    pub const fn typ(self) -> u8 {
        (self.0 & 0xf) as u8
    }

    /// Descriptor class: code/data (`S=1`) or system (`S=0`).
    pub const fn kind(self) -> SegmentKind {
        if self.0 & (1 << 4) != 0 {
            SegmentKind::CodeOrData
        } else {
            SegmentKind::System
        }
    }

    /// Descriptor privilege level (bits 6:5).
    pub const fn dpl(self) -> u8 {
        ((self.0 >> 5) & 3) as u8
    }

    /// Present bit.
    pub const fn present(self) -> bool {
        self.0 & (1 << 7) != 0
    }

    /// 64-bit code segment (`L`) bit.
    pub const fn long(self) -> bool {
        self.0 & (1 << 13) != 0
    }

    /// Default operation size (`D/B`) bit.
    pub const fn db(self) -> bool {
        self.0 & (1 << 14) != 0
    }

    /// Granularity bit.
    pub const fn granularity(self) -> bool {
        self.0 & (1 << 15) != 0
    }

    /// Unusable bit (the register holds no cached descriptor).
    pub const fn unusable(self) -> bool {
        self.0 & Self::UNUSABLE != 0
    }

    /// Returns `true` for a code-segment type (executable, `S=1`).
    pub const fn is_code(self) -> bool {
        matches!(self.kind(), SegmentKind::CodeOrData) && self.typ() & 0x8 != 0
    }

    /// Returns `true` for accessed types (bit 0 of the type field).
    pub const fn accessed(self) -> bool {
        self.typ() & 1 != 0
    }

    /// Returns `true` for writable data / readable code per type bit 1.
    pub const fn rw(self) -> bool {
        self.typ() & 2 != 0
    }

    /// Checks reserved bits for a usable segment.
    pub fn check_reserved(self) -> ArchResult {
        if !self.unusable() && self.0 & Self::RESERVED != 0 {
            return Err(ArchError::new(
                "ar.reserved",
                format!(
                    "reserved access-rights bits set: {:#x}",
                    self.0 & Self::RESERVED
                ),
            ));
        }
        Ok(())
    }
}

/// A full cached segment register as held in the VMCS guest/host state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Segment {
    /// Visible selector.
    pub selector: Selector,
    /// Cached base address.
    pub base: u64,
    /// Cached limit (byte granular as stored in the VMCS).
    pub limit: u32,
    /// Cached access rights in VMX format.
    pub ar: AccessRights,
}

impl Segment {
    /// A flat 64-bit code segment as a real-mode-exited OS would load.
    pub fn flat_code64() -> Self {
        Segment {
            selector: Selector::pack(1, false, 0),
            base: 0,
            limit: 0xffff_ffff,
            ar: AccessRights::build(0xb, true, 0, true, false, true, false, true),
        }
    }

    /// A flat writable data segment.
    pub fn flat_data() -> Self {
        Segment {
            selector: Selector::pack(2, false, 0),
            base: 0,
            limit: 0xffff_ffff,
            ar: AccessRights::build(0x3, true, 0, true, false, false, true, true),
        }
    }

    /// A 64-bit busy TSS suitable for `TR`.
    pub fn busy_tss64() -> Self {
        Segment {
            selector: Selector::pack(3, false, 0),
            base: 0,
            limit: 0x67,
            ar: AccessRights::build(0xb, false, 0, true, false, false, false, false),
        }
    }

    /// An unusable segment (e.g. `LDTR` after boot).
    pub fn unusable() -> Self {
        Segment {
            ar: AccessRights::new(AccessRights::UNUSABLE),
            ..Segment::default()
        }
    }

    /// Granularity/limit consistency (SDM 26.3.1.2): if any of limit bits
    /// 11:0 is 0 then `G` must be 0; if any of bits 31:20 is 1 then `G`
    /// must be 1.
    pub fn check_granularity(&self) -> ArchResult {
        if self.ar.unusable() {
            return Ok(());
        }
        let low_all_ones = self.limit & 0xfff == 0xfff;
        let high_any = self.limit & 0xfff0_0000 != 0;
        if !low_all_ones && self.ar.granularity() {
            return Err(ArchError::new(
                "seg.granularity_low",
                format!("{:#x}: limit bits 11:0 not all 1 but G=1", self.limit),
            ));
        }
        if high_any && !self.ar.granularity() {
            return Err(ArchError::new(
                "seg.granularity_high",
                format!("{:#x}: limit bits 31:20 nonzero but G=0", self.limit),
            ));
        }
        Ok(())
    }

    /// Returns a copy whose limit/G combination passes
    /// [`Segment::check_granularity`], adjusting `G` rather than the limit.
    pub fn round_granularity(&self) -> Self {
        let mut s = *self;
        if s.ar.unusable() {
            return s;
        }
        if s.limit & 0xfff0_0000 != 0 {
            s.ar.0 |= 1 << 15;
            // G=1 requires limit bits 11:0 all ones.
            s.limit |= 0xfff;
        } else if s.limit & 0xfff != 0xfff {
            s.ar.0 &= !(1 << 15);
        }
        s
    }

    /// Checks that the base address is canonical (required for `FS`, `GS`,
    /// `TR`, `LDTR`, and in 64-bit mode for the others' hidden bases).
    pub fn check_base_canonical(&self, which: SegReg) -> ArchResult {
        if !VirtAddr(self.base).is_canonical() {
            return Err(ArchError::new(
                "seg.base_canonical",
                format!("{} base {:#x} is non-canonical", which.name(), self.base),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_packing_roundtrip() {
        let s = Selector::pack(5, true, 3);
        assert_eq!(s.index(), 5);
        assert!(s.ti());
        assert_eq!(s.rpl(), 3);
    }

    #[test]
    fn access_rights_fields() {
        let ar = AccessRights::build(0xb, true, 3, true, false, true, false, true);
        assert_eq!(ar.typ(), 0xb);
        assert_eq!(ar.kind(), SegmentKind::CodeOrData);
        assert_eq!(ar.dpl(), 3);
        assert!(ar.present());
        assert!(ar.long());
        assert!(!ar.db());
        assert!(ar.granularity());
        assert!(ar.is_code());
        assert!(ar.accessed());
        assert!(ar.check_reserved().is_ok());
    }

    #[test]
    fn reserved_ar_bits_rejected_unless_unusable() {
        let bad = AccessRights::new(0x0b00);
        assert!(bad.check_reserved().is_err());
        let unusable = AccessRights::new(0x0b00 | AccessRights::UNUSABLE);
        assert!(unusable.check_reserved().is_ok());
    }

    #[test]
    fn granularity_consistency() {
        assert!(Segment::flat_code64().check_granularity().is_ok());
        assert!(Segment::busy_tss64().check_granularity().is_ok());

        let mut bad = Segment::flat_code64();
        bad.limit = 0x1000; // bits 11:0 zero but G=1
        assert_eq!(
            bad.check_granularity().unwrap_err().rule,
            "seg.granularity_low"
        );

        let mut bad2 = Segment::busy_tss64();
        bad2.limit = 0x0010_0000; // bits 31:20 nonzero but G=0
        assert_eq!(
            bad2.check_granularity().unwrap_err().rule,
            "seg.granularity_high"
        );
    }

    #[test]
    fn granularity_rounding_fixes_both_directions() {
        let mut s = Segment::flat_code64();
        s.limit = 0x1000;
        assert!(s.round_granularity().check_granularity().is_ok());

        let mut t = Segment::busy_tss64();
        t.limit = 0x0010_0000;
        assert!(t.round_granularity().check_granularity().is_ok());

        // Unusable segments are untouched.
        let u = Segment::unusable();
        assert_eq!(u.round_granularity(), u);
    }

    #[test]
    fn base_canonicality() {
        let mut s = Segment::flat_data();
        s.base = 0x8000_0000_0000_0000;
        assert!(s.check_base_canonical(SegReg::Fs).is_err());
        s.base = 0xffff_8000_0000_0000;
        assert!(s.check_base_canonical(SegReg::Fs).is_ok());
    }
}
