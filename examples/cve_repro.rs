//! Reproduces the paper's two CVEs step by step, the way a security
//! researcher would write the PoC (paper §5.5.1, §5.5.3):
//!
//! - **CVE-2023-30456** (KVM): nested VM entry with the IA-32e-mode
//!   control set and guest `CR4.PAE = 0`, with EPT disabled by module
//!   parameter — UBSAN flags the out-of-bounds page-walk write.
//! - **CVE-2024-21106** (VirtualBox): a VM-entry MSR-load entry carrying
//!   a non-canonical `MSR_KERNEL_GS_BASE` — the host takes a #GP.
//!
//! Each PoC prints the exact guest-state recipe (control bits, CR
//! values, MSR-load entries), runs it against the unpatched model to
//! show the detector firing, then re-runs it against the patched model
//! to show the find disappear — the same fixed/unfixed discipline the
//! `fixed_hypervisors_survive_the_same_campaign` integration test
//! enforces.
//!
//! ```text
//! cargo run --release --example cve_repro
//! ```

use nf_hv::{HvConfig, L0Hypervisor, L1Result, Vkvm, Vvbox};
use nf_silicon::{golden_vmcs, CrIndex, GuestInstr};
use nf_vmx::{MsrArea, MsrAreaEntry, VmcsField, VmxCapabilities};
use nf_x86::{CpuFeature, CpuVendor, Cr4, Msr};

fn boot_nested(hv: &mut dyn L0Hypervisor, caps: &VmxCapabilities) {
    hv.l1_exec(GuestInstr::MovToCr(CrIndex::Cr4, Cr4::VMXE | Cr4::PAE));
    assert_eq!(hv.l1_exec(GuestInstr::Vmxon(0x1000)), L1Result::Ok(0));
    assert_eq!(hv.l1_exec(GuestInstr::Vmclear(0x2000)), L1Result::Ok(0));
    assert_eq!(hv.l1_exec(GuestInstr::Vmptrld(0x2000)), L1Result::Ok(0));
    let golden = golden_vmcs(caps);
    for &f in VmcsField::ALL {
        if f.writable() {
            hv.l1_exec(GuestInstr::Vmwrite(f.encoding(), golden.read(f)));
        }
    }
}

fn cve_2023_30456() {
    println!("=== CVE-2023-30456: KVM IA-32e / CR4.PAE consistency gap ===");
    // Step 1: load kvm-intel with EPT disabled (the trigger precondition).
    let mut cfg = HvConfig::default_for(CpuVendor::Intel);
    cfg.features.remove(CpuFeature::Ept);
    cfg.features.remove(CpuFeature::UnrestrictedGuest);
    let mut kvm = Vkvm::new(cfg);
    let caps = kvm.exposed_capabilities().clone();
    println!("  [1] kvm-intel loaded with ept=0");

    // Step 2: boot the L1 hypervisor and build a golden VMCS12.
    boot_nested(&mut kvm, &caps);
    println!("  [2] L1 initialized, golden VMCS12 written");

    // Step 3: IA-32e mode guest with CR4.PAE cleared. The Intel SDM says
    // PAE must be set; the CPU silently assumes it — KVM reads the bit
    // literally and sizes its shadow-walk cache wrong.
    let cr4 = {
        match kvm.l1_exec(GuestInstr::Vmread(VmcsField::GuestCr4.encoding())) {
            L1Result::Ok(v) => v,
            other => panic!("vmread failed: {other:?}"),
        }
    };
    kvm.l1_exec(GuestInstr::Vmwrite(
        VmcsField::GuestCr4.encoding(),
        cr4 & !Cr4::PAE,
    ));
    println!("  [3] GUEST_CR4.PAE cleared while IA-32e mode guest = 1");

    // Step 4: vmlaunch — the hardware quirk lets the entry proceed and
    // the shadow MMU walks out of bounds.
    let result = kvm.l1_exec(GuestInstr::Vmlaunch);
    println!("  [4] vmlaunch -> {result:?}");
    let report = kvm
        .health()
        .reports
        .iter()
        .find(|r| r.bug_id == "CVE-2023-30456")
        .expect("UBSAN must flag the out-of-bounds page walk");
    println!("  [!] {}", report.message);

    // The fixed kernel rejects the state cleanly.
    let mut cfg = HvConfig::default_for(CpuVendor::Intel);
    cfg.features.remove(CpuFeature::Ept);
    cfg.features.remove(CpuFeature::UnrestrictedGuest);
    let mut fixed = Vkvm::new(cfg);
    fixed.bugs.cve_2023_30456_fixed = true;
    let caps = fixed.exposed_capabilities().clone();
    boot_nested(&mut fixed, &caps);
    let cr4 = match fixed.l1_exec(GuestInstr::Vmread(VmcsField::GuestCr4.encoding())) {
        L1Result::Ok(v) => v,
        other => panic!("vmread failed: {other:?}"),
    };
    fixed.l1_exec(GuestInstr::Vmwrite(
        VmcsField::GuestCr4.encoding(),
        cr4 & !Cr4::PAE,
    ));
    let result = fixed.l1_exec(GuestInstr::Vmlaunch);
    assert!(matches!(result, L1Result::L2EntryFailed { .. }));
    assert!(!fixed.health().anomalous());
    println!("  [5] with commit 112e660 applied: clean VM-entry failure\n");
}

fn cve_2024_21106() {
    println!("=== CVE-2024-21106: VirtualBox unvalidated MSR-load value ===");
    let mut vbox = Vvbox::new(HvConfig::default_for(CpuVendor::Intel));
    let caps = VmxCapabilities::from_features(
        nf_x86::FeatureSet::default_for(CpuVendor::Intel).sanitized(CpuVendor::Intel),
    );
    boot_nested(&mut vbox, &caps);
    println!("  [1] L1 initialized under VirtualBox 7.0.12 (model)");

    // Stage the poisoned MSR-load area: a non-canonical KernelGSBase.
    vbox.l1_stage_msr_area(
        0x6000,
        MsrArea {
            entries: vec![MsrAreaEntry {
                index: Msr::KernelGsBase.index(),
                value: 0x8000_0000_0000_0000,
            }],
        },
    );
    vbox.l1_exec(GuestInstr::Vmwrite(
        VmcsField::VmEntryMsrLoadAddr.encoding(),
        0x6000,
    ));
    vbox.l1_exec(GuestInstr::Vmwrite(
        VmcsField::VmEntryMsrLoadCount.encoding(),
        1,
    ));
    println!("  [2] vmentry_msr_load staged: KernelGSBase = 0x8000000000000000");

    let result = vbox.l1_exec(GuestInstr::Vmlaunch);
    println!("  [3] vmlaunch -> {result:?}");
    let report = vbox.health().reports.first().expect("host crash report");
    println!("  [!] {} ({})", report.message, report.bug_id);

    // The fixed build validates like KVM and fails the entry cleanly.
    let mut fixed = Vvbox::new(HvConfig::default_for(CpuVendor::Intel));
    fixed.bugs.msr_load_fixed = true;
    boot_nested(&mut fixed, &caps);
    fixed.l1_stage_msr_area(
        0x6000,
        MsrArea {
            entries: vec![MsrAreaEntry {
                index: Msr::KernelGsBase.index(),
                value: 0x8000_0000_0000_0000,
            }],
        },
    );
    fixed.l1_exec(GuestInstr::Vmwrite(
        VmcsField::VmEntryMsrLoadAddr.encoding(),
        0x6000,
    ));
    fixed.l1_exec(GuestInstr::Vmwrite(
        VmcsField::VmEntryMsrLoadCount.encoding(),
        1,
    ));
    let result = fixed.l1_exec(GuestInstr::Vmlaunch);
    assert!(matches!(result, L1Result::L2EntryFailed { .. }));
    println!("  [4] with the fix: clean MSR-load VM-entry failure (exit 34)");
}

fn main() {
    cve_2023_30456();
    cve_2024_21106();
}
