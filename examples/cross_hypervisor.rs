//! Hypervisor-agnostic fuzzing (paper RQ3): the same NecoFuzz generator
//! drives KVM, Xen, and VirtualBox models, and finds each target's own
//! bugs — nothing in the generator is hypervisor-specific.
//!
//! Demonstrates two things:
//!
//! 1. the per-hypervisor `HvAdapter`s translating one vCPU feature
//!    configuration into each host's own control interface (§3.5);
//! 2. the campaign orchestrator fanning the five-target campaign grid
//!    out over a worker pool — the per-target results print in plan
//!    order no matter which worker finishes first.
//!
//! Every campaign runs on the snapshot persistent-execution engine:
//! the configurator's constant config flips restore cached booted
//! images instead of re-running each hypervisor factory (see
//! `docs/ARCHITECTURE.md`, "The persistent-execution engine").
//!
//! ```text
//! cargo run --release --example cross_hypervisor
//! ```

use necofuzz::campaign::CampaignConfig;
use necofuzz::orchestrator::{Backend, CampaignExecutor, CampaignJob};
use necofuzz::{HvAdapter, KvmAdapter, VboxAdapter, XenAdapter};
use nf_hv::{Vkvm, Vvbox, Vxen};
use nf_x86::{CpuVendor, FeatureSet};

fn main() {
    // The per-hypervisor adapters show how one configuration fans out to
    // each host's own interface (§3.5).
    let features = FeatureSet::default_for(CpuVendor::Intel);
    println!("one vCPU configuration, three host interfaces:");
    let (_, kvm_cmd) = KvmAdapter {
        vendor: CpuVendor::Intel,
    }
    .apply(features, true);
    let (_, xen_cmd) = XenAdapter {
        vendor: CpuVendor::Intel,
    }
    .apply(features, true);
    let (_, vbox_cmd) = VboxAdapter.apply(features, true);
    println!("  kvm : {kvm_cmd}");
    println!("  xen : {xen_cmd}");
    println!("  vbox: {vbox_cmd}");

    let targets: Vec<(Backend, CpuVendor)> = vec![
        (
            Backend::new("vkvm", |c| Box::new(Vkvm::new(c))),
            CpuVendor::Intel,
        ),
        (
            Backend::new("vkvm", |c| Box::new(Vkvm::new(c))),
            CpuVendor::Amd,
        ),
        (
            Backend::new("vxen", |c| Box::new(Vxen::new(c))),
            CpuVendor::Intel,
        ),
        (
            Backend::new("vxen", |c| Box::new(Vxen::new(c))),
            CpuVendor::Amd,
        ),
        (
            Backend::new("vvbox", |c| Box::new(Vvbox::new(c))),
            CpuVendor::Intel,
        ),
    ];
    let jobs: Vec<CampaignJob> = targets
        .iter()
        .map(|(backend, vendor)| CampaignJob {
            backend: backend.clone(),
            cfg: CampaignConfig {
                execs_per_hour: 150,
                ..CampaignConfig::necofuzz(*vendor, 8, 1)
            },
        })
        .collect();

    println!("\nfuzzing every target with the identical generator:");
    let results = CampaignExecutor::new().run_jobs(jobs);
    for ((backend, vendor), result) in targets.iter().zip(&results) {
        let bug_list: Vec<String> = result
            .finds
            .iter()
            .map(|f| format!("{} ({})", f.bug_id, f.kind))
            .collect();
        println!(
            "  {:<12} coverage {:>5.1}%  restarts {:>2}  bugs: {}",
            format!("{}/{vendor}", backend.name()),
            result.final_coverage * 100.0,
            result.restarts,
            if bug_list.is_empty() {
                "none".into()
            } else {
                bug_list.join(", ")
            },
        );
    }
}
