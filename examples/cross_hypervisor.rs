//! Hypervisor-agnostic fuzzing (paper RQ3): the same NecoFuzz generator
//! drives KVM, Xen, and VirtualBox models, and finds each target's own
//! bugs — nothing in the generator is hypervisor-specific.
//!
//! ```text
//! cargo run --release --example cross_hypervisor
//! ```

use necofuzz::campaign::{run_campaign, CampaignConfig};
use necofuzz::{HvAdapter, KvmAdapter, VboxAdapter, XenAdapter};
use nf_hv::{HvConfig, L0Hypervisor, Vkvm, Vvbox, Vxen};
use nf_x86::{CpuVendor, FeatureSet};

fn main() {
    // The per-hypervisor adapters show how one configuration fans out to
    // each host's own interface (§3.5).
    let features = FeatureSet::default_for(CpuVendor::Intel);
    println!("one vCPU configuration, three host interfaces:");
    let (_, kvm_cmd) = KvmAdapter {
        vendor: CpuVendor::Intel,
    }
    .apply(features, true);
    let (_, xen_cmd) = XenAdapter {
        vendor: CpuVendor::Intel,
    }
    .apply(features, true);
    let (_, vbox_cmd) = VboxAdapter.apply(features, true);
    println!("  kvm : {kvm_cmd}");
    println!("  xen : {xen_cmd}");
    println!("  vbox: {vbox_cmd}");

    let targets: Vec<(
        &str,
        Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
        CpuVendor,
    )> = vec![
        (
            "vkvm/Intel",
            Box::new(|c| Box::new(Vkvm::new(c))),
            CpuVendor::Intel,
        ),
        (
            "vkvm/AMD",
            Box::new(|c| Box::new(Vkvm::new(c))),
            CpuVendor::Amd,
        ),
        (
            "vxen/Intel",
            Box::new(|c| Box::new(Vxen::new(c))),
            CpuVendor::Intel,
        ),
        (
            "vxen/AMD",
            Box::new(|c| Box::new(Vxen::new(c))),
            CpuVendor::Amd,
        ),
        (
            "vvbox/Intel",
            Box::new(|c| Box::new(Vvbox::new(c))),
            CpuVendor::Intel,
        ),
    ];

    println!("\nfuzzing every target with the identical generator:");
    for (name, factory, vendor) in targets {
        let cfg = CampaignConfig {
            execs_per_hour: 150,
            ..CampaignConfig::necofuzz(vendor, 8, 1)
        };
        let result = run_campaign(factory, &cfg);
        let bug_list: Vec<String> = result
            .finds
            .iter()
            .map(|f| format!("{} ({})", f.bug_id, f.kind))
            .collect();
        println!(
            "  {:<12} coverage {:>5.1}%  restarts {:>2}  bugs: {}",
            name,
            result.final_coverage * 100.0,
            result.restarts,
            if bug_list.is_empty() {
                "none".into()
            } else {
                bug_list.join(", ")
            },
        );
    }
}
