//! Quickstart: the smallest end-to-end NecoFuzz run — fuzz the KVM
//! model for four virtual hours on one core and print what it found.
//!
//! Expected output: a per-hour coverage ramp (the `#` bars saturate
//! around 80% of the modeled `nested.c`), the execution/restart
//! counters, and any Table 6 bugs the short run tripped over. The
//! campaign runs on the snapshot persistent-execution engine (cached
//! booted images restored per iteration — the default; pass
//! `--engine rebuild` to the `necofuzz` binary to A/B the original
//! reboot semantics). For a multi-run, multi-core version of the same
//! thing, see the `necofuzz` binary's `--runs`/`--jobs` flags or the
//! `cross_hypervisor` example.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use necofuzz::campaign::{run_campaign, CampaignConfig};
use nf_hv::Vkvm;
use nf_x86::CpuVendor;

fn main() {
    let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 4, 0);
    println!(
        "NecoFuzz quickstart: fuzzing vkvm/Intel for {} virtual hours...",
        cfg.hours
    );

    let result = run_campaign(Box::new(|c| Box::new(Vkvm::new(c))), &cfg);

    println!("\nexecutions        : {}", result.execs);
    println!("watchdog restarts : {}", result.restarts);
    println!(
        "nested.c coverage : {:.1}% ({} / {} lines)",
        result.final_coverage * 100.0,
        result.lines.count_in(&result.map, result.file),
        result.map.file_lines(result.file),
    );
    println!("\ncoverage per virtual hour:");
    for s in &result.hourly {
        let bars = "#".repeat((s.coverage * 50.0) as usize);
        println!("  h{:>2} {:>6.1}% {}", s.hour, s.coverage * 100.0, bars);
    }
    if result.finds.is_empty() {
        println!("\nno anomalies this run — try more hours or another seed");
    } else {
        println!("\nvulnerabilities found:");
        for f in &result.finds {
            println!(
                "  [{}] {} at exec {}: {}",
                f.kind, f.bug_id, f.exec, f.message
            );
        }
    }
}
