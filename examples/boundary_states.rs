//! Inside the VM state validator (paper §3.4): watch a raw fuzz input
//! become a near-boundary VM state, and watch the validator correct its
//! own model against the hardware oracle.
//!
//! The program rounds a random byte blob into a valid VMCS and prints
//! the Hamming distance the rounding pass moved (the Figure 5
//! quantity); then fuzzes until the physical-CPU oracle has flagged
//! every divergence of the validator's Bochs-derived model (the two
//! Bochs bugs and the PAE quirk of §3.4) and prints each correction as
//! it is learned; and finally shows selective bit invalidation
//! producing near-boundary states that sit just on either side of the
//! VM-entry checks.
//!
//! ```text
//! cargo run --release --example boundary_states
//! ```

use necofuzz::validator::VmStateValidator;
use nf_vmx::{MsrArea, Vmcs, VmcsField, VmxCapabilities};
use nf_x86::{CpuVendor, FeatureSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let caps = VmxCapabilities::from_features(
        FeatureSet::default_for(CpuVendor::Intel).sanitized(CpuVendor::Intel),
    );
    let mut validator = VmStateValidator::new(caps.clone());
    let mut rng = SmallRng::seed_from_u64(2026);

    // --- 1. Raw random bytes are hopeless as VM states.
    let mut seed = vec![0u8; Vmcs::BYTES];
    rng.fill(&mut seed[..]);
    let raw = Vmcs::from_bytes(&seed);
    let raw_verdict = nf_silicon::try_vmentry(&raw, &caps, &MsrArea::new());
    println!(
        "raw random VMCS      -> {:?}",
        raw_verdict.err().map(|e| e.rule()).unwrap_or("ok")
    );

    // --- 2. Rounding moves the state next to the validity boundary.
    let rounded = validator.round(&raw);
    let dist = raw.hamming_distance(&rounded);
    println!(
        "rounded VMCS         -> {:?} ({} of {} bits changed)",
        nf_silicon::try_vmentry(&rounded, &caps, &MsrArea::new())
            .err()
            .map(|e| e.rule())
            .unwrap_or("ok"),
        dist,
        nf_vmx::STATE_BITS,
    );

    // --- 3. The oracle loop corrects the validator's Bochs-derived
    //        model at runtime (the "two Bochs bugs" + the PAE quirk).
    println!("\noracle self-correction during fuzzing:");
    let mut directives = [0u8; 28];
    for i in 0..2000 {
        rng.fill(&mut seed[..]);
        rng.fill(&mut directives[..]);
        let before = validator.corrections.len();
        let _ = validator.generate(&seed, &directives, &[]);
        for c in &validator.corrections[before..] {
            println!("  exec {:>4}: [{}] {}", i, c.rule, c.detail);
        }
        if validator.fully_corrected() {
            break;
        }
    }

    // --- 4. Selective invalidation: 1-3 fields x 1-8 bits.
    println!("\nselective invalidation (near-boundary states):");
    for _ in 0..5 {
        rng.fill(&mut seed[..]);
        rng.fill(&mut directives[..]);
        let rounded = validator.round(&Vmcs::from_bytes(&seed));
        let mutated = validator.mutate(&rounded, &directives);
        let flipped: Vec<String> = VmcsField::ALL
            .iter()
            .filter(|&&f| rounded.read(f) != mutated.read(f))
            .map(|&f| f.name().to_string())
            .collect();
        let verdict = nf_silicon::try_vmentry(&mutated, &caps, &MsrArea::new());
        println!(
            "  flip {:<45} -> {}",
            flipped.join("+"),
            verdict.err().map(|e| e.rule()).unwrap_or("still valid"),
        );
    }
}
