//! Property-based tests (proptest) on the framework's core invariants:
//! the validator's rounding soundness and idempotence-adjacent
//! properties, VMCS serialization, capability rounding, and the
//! silicon/validator agreement the oracle loop converges to.

use necofuzz::validator::VmStateValidator;
use nf_vmx::{MsrArea, Vmcb, Vmcs, VmxCapabilities};
use nf_x86::{CpuVendor, FeatureSet};
use proptest::prelude::*;

fn caps() -> VmxCapabilities {
    VmxCapabilities::from_features(
        FeatureSet::default_for(CpuVendor::Intel).sanitized(CpuVendor::Intel),
    )
}

/// A corrected validator (as it is after the oracle warm-up).
fn corrected_validator() -> VmStateValidator {
    let mut v = VmStateValidator::new(caps());
    v.apply_known_quirk();
    v.apply_ss_rpl_fix();
    v.apply_tr_type_fix();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rounding soundness: any byte seed rounds to a state the physical
    /// CPU accepts (the property the oracle loop converges to).
    #[test]
    fn rounded_states_always_enter(seed in proptest::collection::vec(any::<u8>(), Vmcs::BYTES)) {
        let validator = corrected_validator();
        let rounded = validator.round(&Vmcs::from_bytes(&seed));
        prop_assert!(
            nf_silicon::try_vmentry(&rounded, &caps(), &MsrArea::new()).is_ok(),
            "rounded state rejected"
        );
    }

    /// Rounding is idempotent: a valid state rounds to itself.
    #[test]
    fn rounding_is_idempotent(seed in proptest::collection::vec(any::<u8>(), Vmcs::BYTES)) {
        let validator = corrected_validator();
        let once = validator.round(&Vmcs::from_bytes(&seed));
        let twice = validator.round(&once);
        prop_assert_eq!(once, twice);
    }

    /// VMCS byte serialization round-trips.
    #[test]
    fn vmcs_serialization_roundtrips(seed in proptest::collection::vec(any::<u8>(), Vmcs::BYTES)) {
        let vmcs = Vmcs::from_bytes(&seed);
        let back = Vmcs::from_bytes(&vmcs.to_bytes());
        prop_assert_eq!(vmcs, back);
    }

    /// VMCB byte serialization round-trips.
    #[test]
    fn vmcb_serialization_roundtrips(seed in proptest::collection::vec(any::<u8>(), Vmcb::BYTES)) {
        let vmcb = Vmcb::from_bytes(&seed);
        let back = Vmcb::from_bytes(&vmcb.to_bytes());
        prop_assert_eq!(vmcb, back);
    }

    /// Hamming distance is a metric: symmetric, zero iff equal, and the
    /// mutation step moves by at most fields*bits flips.
    #[test]
    fn mutation_distance_is_bounded(
        seed in proptest::collection::vec(any::<u8>(), Vmcs::BYTES),
        directives in proptest::collection::vec(any::<u8>(), 28),
    ) {
        let validator = corrected_validator();
        let rounded = validator.round(&Vmcs::from_bytes(&seed));
        let mutated = validator.mutate(&rounded, &directives);
        let d = rounded.hamming_distance(&mutated);
        prop_assert_eq!(d, mutated.hamming_distance(&rounded));
        // Up to 3 fields x 8 bits; pairs of flips on the same bit cancel,
        // so zero is possible (and keeps the state exactly on-boundary).
        prop_assert!(d <= 24, "1..=3 fields x 1..=8 bits, got {}", d);
    }

    /// Rounded VMCBs always pass the silicon `vmrun` checks.
    #[test]
    fn rounded_vmcbs_always_vmrun(seed in proptest::collection::vec(any::<u8>(), Vmcb::BYTES)) {
        let validator = corrected_validator();
        let rounded = validator.round_vmcb(&Vmcb::from_bytes(&seed));
        prop_assert!(nf_silicon::check_vmrun(&rounded, true).is_ok());
    }

    /// Control-word rounding always satisfies the capability pair, for
    /// every control kind and any raw value.
    #[test]
    fn capability_rounding_sound(raw in any::<u32>()) {
        let caps = caps();
        for kind in nf_vmx::CtrlKind::ALL {
            let rounded = caps.round_control(kind, raw);
            prop_assert!(caps.control_ok(kind, rounded), "{:?} {:#x}", kind, raw);
        }
    }

    /// CR fixed-bit rounding is sound and idempotent.
    #[test]
    fn cr_rounding_sound(raw in any::<u64>(), ug in any::<bool>()) {
        let caps = caps();
        let cr0 = caps.round_cr0(raw, ug);
        prop_assert!(caps.cr0_ok(cr0, ug));
        prop_assert_eq!(caps.round_cr0(cr0, ug), cr0);
        let cr4 = caps.round_cr4(raw);
        prop_assert!(caps.cr4_ok(cr4));
    }

    /// The silicon entry decision is deterministic (same state, same
    /// verdict) — required for reproducible crash inputs.
    #[test]
    fn silicon_is_deterministic(seed in proptest::collection::vec(any::<u8>(), Vmcs::BYTES)) {
        let vmcs = Vmcs::from_bytes(&seed);
        let a = nf_silicon::try_vmentry(&vmcs, &caps(), &MsrArea::new());
        let b = nf_silicon::try_vmentry(&vmcs, &caps(), &MsrArea::new());
        prop_assert_eq!(format!("{:?}", a), format!("{:?}", b));
    }

    /// The fuzz input accessors never panic for any offset.
    #[test]
    fn input_accessors_total(off in 0usize..4096) {
        let input = nf_fuzz::FuzzInput::zeroed();
        let _ = input.u16_at(off);
        let _ = input.u32_at(off);
        let _ = input.u64_at(off);
        let _ = input.slice(off, 64);
    }

    /// The harness decoders are total over the selector space.
    #[test]
    fn harness_decoders_total(step in proptest::collection::vec(any::<u8>(), 4)) {
        for vendor in [CpuVendor::Intel, CpuVendor::Amd] {
            let harness = necofuzz::ExecutionHarness::new(vendor);
            let _ = harness.decode_l2_instr(&step);
            let _ = harness.decode_l1_action(&step);
        }
    }

    /// Mutated init plans always keep at least two steps and never grow
    /// unboundedly (template structure is preserved, §4.2).
    #[test]
    fn init_plans_preserve_structure(bytes in proptest::collection::vec(any::<u8>(), 64)) {
        for vendor in [CpuVendor::Intel, CpuVendor::Amd] {
            let harness = necofuzz::ExecutionHarness::new(vendor);
            let canonical = harness.canonical_plan(7).steps.len();
            let plan = harness.mutated_plan(7, &bytes);
            prop_assert!(plan.steps.len() >= canonical - 1);
            prop_assert!(plan.steps.len() <= canonical + 1);
        }
    }

    /// Line sets: algebra laws used by the Table 2 rows.
    #[test]
    fn lineset_algebra(hits_a in proptest::collection::vec(any::<bool>(), 64),
                       hits_b in proptest::collection::vec(any::<bool>(), 64)) {
        let mut map = nf_coverage::CovMap::new();
        let file = map.add_file("t");
        let blocks: Vec<_> = (0..64).map(|i| map.add_block(file, 1 + (i % 3), "b")).collect();
        let mut a = nf_coverage::LineSet::for_map(&map);
        let mut b = nf_coverage::LineSet::for_map(&map);
        for (i, &h) in hits_a.iter().enumerate() {
            if h { a.add_block(map.block(blocks[i])); }
        }
        for (i, &h) in hits_b.iter().enumerate() {
            if h { b.add_block(map.block(blocks[i])); }
        }
        let inter = a.intersect(&b).count();
        let a_only = a.minus(&b).count();
        let b_only = b.minus(&a).count();
        let mut union = a.clone();
        union.union_with(&b);
        prop_assert_eq!(union.count(), inter + a_only + b_only);
        prop_assert_eq!(a.count(), inter + a_only);
        prop_assert_eq!(b.count(), inter + b_only);
    }
}
