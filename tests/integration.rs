//! Cross-crate integration tests: the full NecoFuzz pipeline against
//! every hypervisor model, the Table 6 bug-discovery ground truth, and
//! the coverage relationships the paper's tables depend on.

use necofuzz::campaign::{run_campaign, CampaignConfig};
use necofuzz::ComponentMask;
use nf_fuzz::Mode;
use nf_hv::{CrashKind, HvConfig, L0Hypervisor, Vkvm, Vvbox, Vxen};
use nf_x86::CpuVendor;

type Factory = Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>;

fn kvm() -> Factory {
    Box::new(|c| Box::new(Vkvm::new(c)))
}

fn xen() -> Factory {
    Box::new(|c| Box::new(Vxen::new(c)))
}

fn vbox() -> Factory {
    Box::new(|c| Box::new(Vvbox::new(c)))
}

fn campaign(
    factory: Factory,
    vendor: CpuVendor,
    hours: u32,
    seed: u64,
) -> necofuzz::CampaignResult {
    let cfg = CampaignConfig::necofuzz(vendor, hours, seed)
        .with_execs_per_hour(150)
        .with_mode(Mode::Unguided)
        .with_mask(ComponentMask::ALL)
        .with_engine(necofuzz::EngineMode::Snapshot);
    run_campaign(factory, &cfg)
}

/// Collect the union of bug ids found over a few seeds.
fn finds_over_seeds(factory: fn() -> Factory, vendor: CpuVendor, hours: u32) -> Vec<String> {
    let mut ids = std::collections::BTreeSet::new();
    for seed in 0..3 {
        for f in campaign(factory(), vendor, hours, seed).finds {
            ids.insert(f.bug_id);
        }
    }
    ids.into_iter().collect()
}

#[test]
fn necofuzz_finds_the_kvm_bugs() {
    let ids = finds_over_seeds(kvm, CpuVendor::Intel, 24);
    assert!(
        ids.iter().any(|i| i == "kvm-spurious-triple-fault"),
        "bug #3 (spurious triple fault) expected, got {ids:?}"
    );
    assert!(
        ids.iter().any(|i| i == "CVE-2023-30456"),
        "bug #1 (CVE-2023-30456) expected, got {ids:?}"
    );
}

#[test]
fn necofuzz_finds_the_xen_intel_hang() {
    let ids = finds_over_seeds(xen, CpuVendor::Intel, 8);
    assert!(
        ids.iter().any(|i| i == "xen-wait-for-sipi"),
        "bug #4 (wait-for-SIPI hang) expected, got {ids:?}"
    );
}

#[test]
fn necofuzz_finds_the_xen_amd_bugs() {
    let ids = finds_over_seeds(xen, CpuVendor::Amd, 16);
    assert!(
        ids.iter().any(|i| i == "xen-avic-noaccel"),
        "bug #5 (AVIC_NOACCEL) expected, got {ids:?}"
    );
    assert!(
        ids.iter().any(|i| i == "xen-vgif-assert"),
        "bug #6 (VGIF assertion) expected, got {ids:?}"
    );
}

#[test]
fn necofuzz_finds_the_virtualbox_cve() {
    let ids = finds_over_seeds(vbox, CpuVendor::Intel, 8);
    assert!(
        ids.iter().any(|i| i == "CVE-2024-21106"),
        "bug #2 (CVE-2024-21106) expected, got {ids:?}"
    );
}

#[test]
fn fixed_hypervisors_survive_the_same_campaign() {
    // With every Table 6 fix applied, the same inputs find nothing.
    let factory: Factory = Box::new(|c| {
        let mut kvm = Vkvm::new(c);
        kvm.bugs.cve_2023_30456_fixed = true;
        kvm.bugs.dummy_root_fixed = true;
        Box::new(kvm)
    });
    let result = campaign(factory, CpuVendor::Intel, 12, 0);
    assert!(
        result.finds.is_empty(),
        "patched vkvm must be clean, found {:?}",
        result.finds.iter().map(|f| &f.bug_id).collect::<Vec<_>>()
    );

    let factory: Factory = Box::new(|c| {
        let mut x = Vxen::new(c);
        x.bugs.activity_state_fixed = true;
        x.bugs.lma_pg_fixed = true;
        x.bugs.vgif_assert_fixed = true;
        Box::new(x)
    });
    let result = campaign(factory, CpuVendor::Amd, 12, 0);
    assert!(result.finds.is_empty(), "patched vxen must be clean");
}

#[test]
fn watchdog_restarts_keep_the_campaign_alive() {
    // Xen/Intel campaigns hit the host-hang bug; the watchdog restarts
    // and the campaign still makes coverage progress afterwards.
    let result = campaign(xen(), CpuVendor::Intel, 12, 1);
    if result.finds.iter().any(|f| f.kind == CrashKind::HostHang) {
        assert!(result.restarts > 0, "a hang implies a watchdog restart");
    }
    assert!(
        result.final_coverage > 0.4,
        "coverage {}",
        result.final_coverage
    );
    assert_eq!(result.execs, 12 * 150);
}

#[test]
fn coverage_ordering_matches_table2() {
    // NecoFuzz > Syzkaller on both vendors; the AMD gap is dramatic.
    let neco_i = campaign(kvm(), CpuVendor::Intel, 24, 0).final_coverage;
    let neco_a = campaign(kvm(), CpuVendor::Amd, 24, 0).final_coverage;
    let syz_i = nf_baselines::syzkaller(kvm(), CpuVendor::Intel, 24, 150, 0).final_coverage;
    let syz_a = nf_baselines::syzkaller(kvm(), CpuVendor::Amd, 24, 150, 0).final_coverage;
    assert!(neco_i > syz_i, "Intel: {neco_i} vs {syz_i}");
    assert!(neco_a > 3.0 * syz_a, "AMD: {neco_a} vs {syz_a}");
    assert!(neco_i > 0.7, "NecoFuzz Intel too low: {neco_i}");
}

#[test]
fn necofuzz_subsumes_most_of_syzkaller() {
    // Table 2's set rows: Syzkaller-minus-NecoFuzz is small and mostly
    // the ioctl-only surface NecoFuzz's threat model excludes.
    let neco = campaign(kvm(), CpuVendor::Intel, 24, 0);
    let syz = nf_baselines::syzkaller(kvm(), CpuVendor::Intel, 24, 150, 0);
    let syz_only = syz.lines.minus(&neco.lines).count();
    let neco_only = neco.lines.minus(&syz.lines).count();
    assert!(
        neco_only > 2 * syz_only,
        "NecoFuzz-unique ({neco_only}) must dwarf Syzkaller-unique ({syz_only})"
    );
}

#[test]
fn ablation_ordering_matches_table3() {
    let mut cov = std::collections::BTreeMap::new();
    for (name, mask) in [
        ("all", ComponentMask::ALL),
        (
            "no_validator",
            ComponentMask {
                validator: false,
                ..ComponentMask::ALL
            },
        ),
        ("none", ComponentMask::NONE),
    ] {
        let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 12, 0)
            .with_execs_per_hour(150)
            .with_mask(mask);
        cov.insert(name, run_campaign(kvm(), &cfg).final_coverage);
    }
    assert!(cov["all"] > cov["no_validator"], "{cov:?}");
    assert!(cov["no_validator"] > cov["none"], "{cov:?}");
}

#[test]
fn xen_campaign_beats_xtf_by_a_wide_margin() {
    let neco = campaign(xen(), CpuVendor::Intel, 12, 0).final_coverage;
    let xtf = nf_baselines::xtf(xen(), CpuVendor::Intel).final_coverage;
    assert!(neco > xtf + 0.3, "Table 4 gap: {neco} vs {xtf}");
}

#[test]
fn orchestrator_grid_matches_serial_loop() {
    // The public-API contract the bench drivers rely on: a plan run on
    // a pool is element-for-element identical to the hand-written
    // serial loop it replaced.
    use necofuzz::orchestrator::{Backend, CampaignExecutor, CampaignPlan};

    let plan = CampaignPlan::new()
        .backend(Backend::new("vkvm", |c| Box::new(Vkvm::new(c))))
        .vendors(&[CpuVendor::Intel, CpuVendor::Amd])
        .seeds(0..3)
        .hours(2)
        .execs_per_hour(40);
    let pooled = CampaignExecutor::new().jobs(4).run(&plan);

    let mut serial = Vec::new();
    for vendor in [CpuVendor::Intel, CpuVendor::Amd] {
        for seed in 0..3 {
            let cfg = CampaignConfig::necofuzz(vendor, 2, seed).with_execs_per_hour(40);
            serial.push(run_campaign(kvm(), &cfg));
        }
    }

    assert_eq!(pooled.len(), serial.len());
    for (i, (p, s)) in pooled.iter().zip(&serial).enumerate() {
        assert_eq!(p, s, "plan job {i} diverged from the serial loop");
    }
}

#[test]
fn agent_restores_validator_corrections_across_reconfigurations() {
    // The configurator changes configs constantly; corrections learned
    // from the oracle must survive (the model is config-independent).
    let result = campaign(kvm(), CpuVendor::Intel, 8, 3);
    assert!(result.execs > 0);
    // Internal invariant exercised via a fresh agent:
    let mut agent = necofuzz::Agent::new(kvm(), CpuVendor::Intel, ComponentMask::ALL);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(9);
    for _ in 0..300 {
        let input = nf_fuzz::FuzzInput::random(&mut rng);
        agent.run_iteration(&input);
    }
    assert!(
        !agent.validator().corrections.is_empty(),
        "oracle corrections must have occurred and persisted"
    );
}
