//! Async-gossip convergence: the watermark sync protocol must earn its
//! keep without giving up the repo's determinism guarantees.
//!
//! 1. **Determinism**: an async group re-run with the same seeds and
//!    topology reproduces every member bit-for-bit (results *and*
//!    sync-cost counters) — gossip is scheduled, not racy.
//! 2. **Convergence**: after the final drain-to-quiescence, every
//!    member's own coverage equals the fleet union, and that union is
//!    exactly the union a lockstep fleet reaches on the same seeds —
//!    the protocol changes *when* knowledge moves, never *what* is
//!    known.
//! 3. **Topology-independence**: ring and tree fleets converge to the
//!    same union (the gossip graph is a transport, not an oracle).
//! 4. **Orchestrator**: async grids keep serial == parallel, carry the
//!    `/async-<topology>` cell label, and record sync work in the
//!    result counters.

use necofuzz::campaign::{
    run_campaign_group_observed, CampaignConfig, CampaignResult, GroupMember,
};
use necofuzz::orchestrator::{Backend, CampaignExecutor, CampaignPlan};
use nf_coverage::LineSet;
use nf_fuzz::{Mode, SyncMode, SyncTopology};
use nf_hv::Vkvm;
use nf_x86::CpuVendor;

const HOURS: u32 = 3;
const EXECS_PER_HOUR: u32 = 60;

fn group(n: u32, mode: SyncMode, topology: SyncTopology, fuzz_mode: Mode) -> Vec<GroupMember> {
    (0..n)
        .map(|worker| {
            let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, HOURS, u64::from(worker))
                .with_execs_per_hour(EXECS_PER_HOUR)
                .with_mode(fuzz_mode)
                .with_sync_interval(1)
                .with_sync_mode(mode)
                .with_sync_topology(topology);
            let factory: necofuzz::campaign::HvFactory = Box::new(|c| Box::new(Vkvm::new(c)));
            (factory, cfg)
        })
        .collect()
}

/// Runs the group and returns the results plus the final fleet union
/// and worst-member line counts (own coverage, from the last hourly
/// observation).
fn run_group(
    n: u32,
    mode: SyncMode,
    topology: SyncTopology,
    fuzz_mode: Mode,
) -> (Vec<CampaignResult>, u32, u32) {
    let mut union_lines = 0u32;
    let mut min_lines = u32::MAX;
    let results = run_campaign_group_observed(group(n, mode, topology, fuzz_mode), |members| {
        let (map, file) = members[0].coverage_geometry();
        let mut union = LineSet::for_map(&map);
        for member in members {
            union.union_with(member.lines());
        }
        union_lines = union.count_in(&map, file);
        min_lines = members
            .iter()
            .map(|m| m.lines().count_in(&map, file))
            .min()
            .unwrap();
    });
    (results, union_lines, min_lines)
}

#[test]
fn async_group_is_deterministic_for_fixed_seed_and_topology() {
    for topology in [SyncTopology::Tree, SyncTopology::Ring] {
        for fuzz_mode in [Mode::Unguided, Mode::Guided] {
            let (a, union_a, min_a) = run_group(4, SyncMode::Async, topology, fuzz_mode);
            let (b, union_b, min_b) = run_group(4, SyncMode::Async, topology, fuzz_mode);
            assert_eq!(a.len(), b.len());
            for (worker, (ra, rb)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    ra, rb,
                    "{topology} {fuzz_mode:?} worker {worker} diverged across reruns"
                );
                // CampaignResult equality excludes diagnostics, so
                // hold the sync counters to the same standard by hand.
                assert_eq!(
                    ra.sync, rb.sync,
                    "{topology} {fuzz_mode:?} worker {worker} sync counters diverged"
                );
            }
            assert_eq!((union_a, min_a), (union_b, min_b));
        }
    }
}

#[test]
fn async_union_matches_lockstep_union_on_same_seeds() {
    for n in [2u32, 4, 8] {
        let (lockstep, lockstep_union, _) =
            run_group(n, SyncMode::Lockstep, SyncTopology::Tree, Mode::Unguided);
        let (gossip, async_union, async_min) =
            run_group(n, SyncMode::Async, SyncTopology::Tree, Mode::Unguided);
        assert_eq!(
            async_union, lockstep_union,
            "{n}-worker async fleet knows a different union than lockstep"
        );
        // Drain-to-quiescence: by the last observation every member
        // holds the whole fleet's knowledge.
        assert_eq!(
            async_min, async_union,
            "{n}-worker async fleet left a member behind"
        );
        // Async adopts by evidence merge, not replay: the exec budget
        // is untouched, while lockstep replays every adopted entry.
        let budget = u64::from(n) * u64::from(HOURS) * u64::from(EXECS_PER_HOUR);
        let async_execs: u64 = gossip.iter().map(|r| r.execs).sum();
        let lockstep_execs: u64 = lockstep.iter().map(|r| r.execs).sum();
        let lockstep_adopted: u64 = lockstep.iter().map(|r| r.adopted).sum();
        assert_eq!(async_execs, budget, "async adoption must not replay");
        assert_eq!(
            lockstep_execs,
            budget + lockstep_adopted,
            "lockstep adoption replays each adopted entry exactly once"
        );
        // The fleets actually exchanged something.
        assert!(gossip.iter().all(|r| r.sync.deltas_published > 0));
        assert!(gossip.iter().all(|r| r.sync.deltas_applied > 0));
    }
}

#[test]
fn ring_and_tree_converge_to_the_same_union() {
    let (_, tree_union, tree_min) =
        run_group(8, SyncMode::Async, SyncTopology::Tree, Mode::Unguided);
    let (_, ring_union, ring_min) =
        run_group(8, SyncMode::Async, SyncTopology::Ring, Mode::Unguided);
    assert_eq!(tree_union, ring_union, "gossip graph changed the union");
    assert_eq!(tree_min, tree_union);
    assert_eq!(ring_min, ring_union);
}

fn async_plan(topology: SyncTopology) -> CampaignPlan {
    CampaignPlan::new()
        .backend(Backend::new("vkvm", |c| Box::new(Vkvm::new(c))))
        .vendors(&[CpuVendor::Intel])
        .modes(&[Mode::Unguided])
        .seeds(0..4)
        .hours(HOURS)
        .execs_per_hour(EXECS_PER_HOUR)
        .sync_interval(1)
        .sync_mode(SyncMode::Async)
        .sync_topology(topology)
}

#[test]
fn orchestrated_async_grid_is_identical_serial_and_parallel() {
    let plan = async_plan(SyncTopology::Tree);
    let serial = CampaignExecutor::new().jobs(1).run(&plan);
    let parallel = CampaignExecutor::new().jobs(8).run(&plan);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "async job {i} diverged across jobs=1/jobs=8");
        assert_eq!(s.sync, p.sync, "async job {i} sync counters diverged");
    }
    assert!(
        serial.iter().any(|r| r.adopted > 0),
        "async grid exchanged nothing"
    );
}

#[test]
fn async_cells_are_labeled_with_their_topology() {
    for (topology, tag) in [
        (SyncTopology::Tree, "async-tree"),
        (SyncTopology::Ring, "async-ring"),
    ] {
        let jobs = async_plan(topology).jobs();
        assert_eq!(jobs.len(), 4);
        for job in &jobs {
            let label = job.label();
            assert!(
                label.contains(tag),
                "async label {label:?} does not name its topology"
            );
        }
    }
    // Lockstep labels are unchanged — the mode is the unlabeled default.
    for job in async_plan(SyncTopology::Tree)
        .sync_mode(SyncMode::Lockstep)
        .jobs()
    {
        let label = job.label();
        assert!(
            !label.contains("async"),
            "lockstep label {label:?} grew a sync tag"
        );
    }
}
