//! Prefix-cache equivalence: resuming from a mid-scenario snapshot and
//! executing only the suffix must be **bit-identical** to full replay.
//!
//! Three layers of evidence:
//!
//! - a campaign grid (backend × vendor × strategy × sync interval) run
//!   twice — prefix cache on and off — and compared whole-result with
//!   `==` (hourly samples, line sets, finds, corpora: everything);
//! - a proptest sweep at the agent layer comparing the *complete*
//!   per-execution event streams (every init step, every L2 result,
//!   every L1 action) under randomized seeds, vendors, masks, capture
//!   thresholds — including snapshot-at-every-boundary — and an
//!   adversarially tiny byte budget that forces constant eviction;
//! - a replay-oracle regression: a real campaign find reproduces and
//!   minimizes byte-identically through the prefix-cached path.

use necofuzz::campaign::CampaignResult;
use necofuzz::orchestrator::{Backend, CampaignExecutor, CampaignPlan};
use necofuzz::{Agent, ComponentMask, EngineMode, PrefixStoreMode, ReplayOracle};
use nf_fuzz::{FuzzInput, Mode, MutationStrategy};
use nf_hv::{HvConfig, L0Hypervisor, L1Result, L2Result, Vkvm, Vvbox, Vxen};
use nf_x86::CpuVendor;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn plan(prefix: bool, backend: Backend, vendors: &[CpuVendor]) -> CampaignPlan {
    CampaignPlan::new()
        .backend(backend)
        .vendors(vendors)
        .modes(&[Mode::Unguided, Mode::Guided])
        .seeds([1])
        .hours(8)
        .execs_per_hour(40)
        .prefix_cache(prefix)
}

fn assert_equivalent(
    backend: fn() -> Backend,
    vendors: &[CpuVendor],
    shape: impl Fn(CampaignPlan) -> CampaignPlan,
) -> Vec<CampaignResult> {
    let executor = CampaignExecutor::new();
    let cached = executor.run(&shape(plan(true, backend(), vendors)));
    let full = executor.run(&shape(plan(false, backend(), vendors)));
    assert_eq!(cached.len(), full.len());
    let labels: Vec<String> = shape(plan(true, backend(), vendors))
        .jobs()
        .iter()
        .map(|j| j.label())
        .collect();
    for ((c, f), label) in cached.iter().zip(&full).zip(&labels) {
        assert_eq!(c, f, "campaign diverged with the prefix cache on: {label}");
    }
    // The cached leg must actually exercise the trie — a grid where the
    // cache never fires would prove nothing.
    let hits: u64 = cached.iter().map(|r| r.engine_stats.prefix_hits).sum();
    assert!(hits > 0, "prefix cache never hit across the grid");
    assert!(
        cached
            .iter()
            .all(|r| r.engine_stats.prefix_units_skipped >= r.engine_stats.prefix_hits),
        "every hit must skip at least its restore depth"
    );
    cached
}

#[test]
fn vkvm_campaigns_match_with_prefix_cache() {
    assert_equivalent(
        || Backend::new("vkvm", |c| Box::new(Vkvm::new(c))),
        &[CpuVendor::Intel, CpuVendor::Amd],
        |p| p,
    );
}

#[test]
fn vxen_campaigns_match_with_prefix_cache() {
    assert_equivalent(
        || Backend::new("vxen", |c| Box::new(Vxen::new(c))),
        &[CpuVendor::Intel, CpuVendor::Amd],
        |p| p,
    );
}

#[test]
fn vvbox_campaigns_match_with_prefix_cache() {
    assert_equivalent(
        || Backend::new("vvbox", |c| Box::new(Vvbox::new(c))),
        &[CpuVendor::Intel],
        |p| p,
    );
}

#[test]
fn structured_campaigns_match_with_prefix_cache() {
    assert_equivalent(
        || Backend::new("vkvm", |c| Box::new(Vkvm::new(c))),
        &[CpuVendor::Intel],
        |p| p.strategy(MutationStrategy::Structured),
    );
}

#[test]
fn synced_fleets_match_with_prefix_cache() {
    assert_equivalent(
        || Backend::new("vkvm", |c| Box::new(Vkvm::new(c))),
        &[CpuVendor::Intel],
        |p| p.seeds(0..3).sync_interval(2),
    );
}

/// Records **every** execution event verbatim — unlike the
/// differential oracle's canonical observation, which deliberately
/// drops L0-policy results. For prefix equivalence nothing may differ,
/// policy included.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct FullTrace {
    events: Vec<String>,
}

impl necofuzz::ExecObserver for FullTrace {
    fn on_init_step(&mut self, result: &L1Result) {
        self.events.push(format!("init:{result:?}"));
    }

    fn on_l2_result(&mut self, result: &L2Result) {
        self.events.push(format!("l2:{result:?}"));
    }

    fn on_l1_action(&mut self, result: &L1Result) {
        self.events.push(format!("l1:{result:?}"));
    }
}

fn agent_pair(
    vendor: CpuVendor,
    mask: ComponentMask,
    threshold: u32,
    budget: usize,
    store: PrefixStoreMode,
) -> (Agent, Agent) {
    let factory = || {
        Box::new(|c: HvConfig| Box::new(Vkvm::new(c)) as Box<dyn L0Hypervisor>)
            as Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>
    };
    let cached = Agent::with_engine(factory(), vendor, mask, EngineMode::Snapshot)
        .with_prefix_cache(true)
        .with_prefix_threshold(threshold)
        .with_prefix_budget(budget)
        .with_prefix_store(store);
    let full = Agent::with_engine(factory(), vendor, mask, EngineMode::Snapshot);
    (cached, full)
}

fn assert_streams_match(
    seed: u64,
    vendor: CpuVendor,
    mask: ComponentMask,
    threshold: u32,
    budget: usize,
    store: PrefixStoreMode,
) {
    let (mut cached, mut full) = agent_pair(vendor, mask, threshold, budget, store);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut input = FuzzInput::zeroed();
    let mut base = FuzzInput::zeroed();
    base.fill_random(&mut rng);
    for exec in 0..60u64 {
        // Mostly-shared prefixes: mutate a few bytes of a fixed base so
        // the trie sees deep common ancestors (the interesting case),
        // with periodic fully-random inputs (the cold-miss case).
        if exec % 7 == 0 {
            input.fill_random(&mut rng);
        } else {
            input.bytes.copy_from_slice(&base.bytes);
            for _ in 0..rng.gen_range(0..4) {
                let i = rng.gen_range(0..input.bytes.len());
                input.bytes[i] = rng.gen();
            }
        }
        let mut trace_cached = FullTrace::default();
        let mut trace_full = FullTrace::default();
        let fb_cached = cached
            .run_iteration_with(&input, &mut trace_cached)
            .feedback;
        let fb_full = full.run_iteration_with(&input, &mut trace_full).feedback;
        assert_eq!(
            trace_cached, trace_full,
            "event streams diverged at exec {exec} (seed={seed} vendor={vendor} \
             mask={mask:?} threshold={threshold} budget={budget} store={store})"
        );
        assert_eq!(fb_cached, fb_full, "feedback diverged at exec {exec}");
        assert_eq!(
            cached.observe_guest(),
            full.observe_guest(),
            "final guest state diverged at exec {exec}"
        );
    }
    assert_eq!(cached.coverage_fraction(), full.coverage_fraction());
    assert_eq!(cached.restarts(), full.restarts());
    assert_eq!(cached.triage(), full.triage());
}

fn masks() -> [ComponentMask; 4] {
    [
        ComponentMask::ALL,
        ComponentMask {
            harness: false,
            ..ComponentMask::ALL
        },
        ComponentMask {
            validator: false,
            ..ComponentMask::ALL
        },
        ComponentMask::NONE,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized agent-level sweep: threshold 1 snapshots at *every*
    /// boundary, and the 4 KiB budget cannot hold even one node, so
    /// insertion and eviction churn on every execution — under both
    /// snapshot stores (content-addressed CoW and deep copy).
    #[test]
    fn prefix_restored_streams_equal_full_replay(
        seed in any::<u64>(),
        amd in any::<bool>(),
        mask_idx in 0usize..4,
        threshold in 1u32..4,
        tiny_budget in any::<bool>(),
        deep_store in any::<bool>(),
    ) {
        let vendor = if amd { CpuVendor::Amd } else { CpuVendor::Intel };
        let budget = if tiny_budget { 4 << 10 } else { 8 << 20 };
        let store = if deep_store {
            PrefixStoreMode::DeepCopy
        } else {
            PrefixStoreMode::Cow
        };
        assert_streams_match(seed, vendor, masks()[mask_idx], threshold, budget, store);
    }
}

#[test]
fn adversarial_eviction_stays_equivalent_and_actually_evicts() {
    for store in [PrefixStoreMode::Cow, PrefixStoreMode::DeepCopy] {
        let (mut cached, mut full) =
            agent_pair(CpuVendor::Intel, ComponentMask::ALL, 1, 4 << 10, store);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut input = FuzzInput::zeroed();
        input.fill_random(&mut rng);
        for _ in 0..20 {
            let mut a = FullTrace::default();
            let mut b = FullTrace::default();
            cached.run_iteration_with(&input, &mut a);
            full.run_iteration_with(&input, &mut b);
            assert_eq!(a, b, "store {store} diverged from full replay");
        }
        let stats = cached.engine_stats();
        assert!(
            stats.prefix_evictions > 0,
            "a 4 KiB budget must evict under {store}: {stats:?}"
        );
        assert!(
            stats.prefix_captures > stats.prefix_evictions / 2,
            "capture should keep retrying under churn ({store}): {stats:?}"
        );
    }
}

/// The two snapshot stores must be execution-equivalent to *each
/// other* under tiny-budget churn — same event streams, same hit and
/// eviction counters — differing only in byte accounting (the CoW
/// store charges unique blobs once, so it retains at least as many
/// nodes in the same budget).
#[test]
fn cow_and_deep_stores_are_execution_equivalent_under_churn() {
    let pair = |store| agent_pair(CpuVendor::Intel, ComponentMask::ALL, 1, 48 << 10, store).0;
    let mut cow = pair(PrefixStoreMode::Cow);
    let mut deep = pair(PrefixStoreMode::DeepCopy);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut input = FuzzInput::zeroed();
    let mut base = FuzzInput::zeroed();
    base.fill_random(&mut rng);
    for exec in 0..30u64 {
        if exec % 5 == 0 {
            input.fill_random(&mut rng);
        } else {
            input.bytes.copy_from_slice(&base.bytes);
            let i = rng.gen_range(0..input.bytes.len());
            input.bytes[i] = rng.gen();
        }
        let mut a = FullTrace::default();
        let mut b = FullTrace::default();
        let fa = cow.run_iteration_with(&input, &mut a).feedback;
        let fb = deep.run_iteration_with(&input, &mut b).feedback;
        assert_eq!(a, b, "stores diverged at exec {exec}");
        assert_eq!(fa, fb, "feedback diverged at exec {exec}");
    }
    assert_eq!(cow.coverage_fraction(), deep.coverage_fraction());
    assert_eq!(cow.triage(), deep.triage());
    let (cs, ds) = (cow.engine_stats(), deep.engine_stats());
    assert!(cs.prefix_captures > 0, "churn must capture: {cs:?}");
    assert!(
        cs.prefix_bytes_resident <= ds.prefix_bytes_resident || cs.prefix_nodes >= ds.prefix_nodes,
        "CoW must not retain less per byte than deep copies: {cs:?} vs {ds:?}"
    );
    assert!(
        cs.prefix_dedup_ratio() >= 1.0 && (ds.prefix_dedup_ratio() - 1.0).abs() < f64::EPSILON,
        "only the CoW store dedups: {cs:?} vs {ds:?}"
    );
}

#[test]
fn replay_oracle_reproduces_and_minimizes_identically_through_the_cache() {
    use necofuzz::campaign::{run_campaign, CampaignConfig};

    // The short Xen/Intel campaign that reliably hits the
    // wait-for-SIPI hang (Table 6 bug #4) — run it prefix-cached, then
    // prove the find replays and minimizes byte-identically both ways.
    let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 4, 0)
        .with_execs_per_hour(120)
        .with_prefix_cache(true);
    let result = run_campaign(Box::new(|c| Box::new(Vxen::new(c))), &cfg);
    let find = result
        .finds
        .iter()
        .find(|f| f.bug_id == "xen-wait-for-sipi")
        .expect("the prefix-cached campaign must still find the hang");

    let oracle = |prefix: bool| {
        ReplayOracle::new(
            |c| Box::new(Vxen::new(c)) as Box<dyn L0Hypervisor>,
            CpuVendor::Intel,
            ComponentMask::ALL,
            EngineMode::Snapshot,
        )
        .with_prefix_cache(prefix)
    };
    let cached = oracle(true);
    let full = oracle(false);
    assert!(cached.reproduces(&find.bug_id, &find.input));
    assert_eq!(
        cached.replay(&find.input),
        full.replay(&find.input),
        "replay findings must match across cache modes"
    );
    let min_cached = cached.minimize(&find.bug_id, &find.input);
    let min_full = full.minimize(&find.bug_id, &find.input);
    assert_eq!(
        min_cached.bytes, min_full.bytes,
        "minimized reproducers must be byte-identical across cache modes"
    );
    assert!(cached.reproduces(&find.bug_id, &min_cached));
}
