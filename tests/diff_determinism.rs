//! Differential-oracle determinism: arming the cross-backend oracle
//! must keep every reproducibility guarantee the orchestrator makes.
//!
//! 1. **same seed + backend set ⇒ same signatures**: two runs of the
//!    same differential campaign are structurally identical, down to
//!    the divergence findings and their discovery execs.
//! 2. **serial == parallel**: a synced differential grid run with
//!    `jobs(1)` equals the same grid with `jobs(8)` — the oracle's
//!    replay agents live inside the campaign, so worker count cannot
//!    reorder observations (and the adoption-replay diff path is
//!    exercised by the sync exchanges).
//! 3. **lone == group**: a never-syncing or final-boundary-syncing
//!    group member reproduces the plain lone campaign bit-for-bit,
//!    divergence stats included.
//! 4. **`BENCH_diff.json` is bit-reproducible**: the committed
//!    artifact regenerates byte-for-byte through the same pipeline the
//!    `diff_oracle` binary runs.

use necofuzz::campaign::{run_campaign, CampaignConfig};
use necofuzz::orchestrator::{Backend, CampaignExecutor, CampaignPlan};
use necofuzz::{backend_factory, OracleMode, SEEDED_HLT_BACKEND};
use nf_bench::diff_bench::{self, SEEDED_SIGNATURE};
use nf_fuzz::Mode;
use nf_hv::{CrashKind, Vkvm};
use nf_x86::CpuVendor;

const HOURS: u32 = 4;
const EXECS_PER_HOUR: u32 = 120;
const PAIR: [&str; 2] = [SEEDED_HLT_BACKEND, "golden"];

/// The seeded-bug backend as an orchestrator target: fuzzing the buggy
/// hypervisor while diffing it against golden is the configuration
/// whose findings are deterministic *and* non-empty at this budget.
fn buggy_backend() -> Backend {
    Backend::new(SEEDED_HLT_BACKEND, |c| {
        let mut hv = Vkvm::new(c);
        hv.bugs.misreport_hlt_exit = true;
        Box::new(hv)
    })
}

fn differential_cfg(seed: u64) -> CampaignConfig {
    CampaignConfig::necofuzz(CpuVendor::Intel, HOURS, seed)
        .with_execs_per_hour(EXECS_PER_HOUR)
        .with_mode(Mode::Unguided)
        .with_oracle(OracleMode::Differential)
        .with_diff_backends(&PAIR)
}

#[test]
fn same_seed_and_backend_set_reproduce_identical_signatures() {
    let factory = || backend_factory(SEEDED_HLT_BACKEND).expect("known backend");
    let first = run_campaign(factory(), &differential_cfg(0));
    let second = run_campaign(factory(), &differential_cfg(0));
    assert_eq!(
        first, second,
        "same seed + backend set must reproduce exactly"
    );

    let signatures: Vec<&str> = first
        .finds
        .iter()
        .filter(|f| f.kind == CrashKind::Divergence)
        .map(|f| f.bug_id.as_str())
        .collect();
    assert!(
        signatures.contains(&SEEDED_SIGNATURE),
        "the planted divergence must be among the findings: {signatures:?}"
    );
    assert!(first.diff_execs > 0 && first.divergence.execs_compared > 0);
}

#[test]
fn differential_grid_serial_equals_parallel() {
    for mode in [Mode::Unguided, Mode::Guided] {
        let plan = CampaignPlan::new()
            .backend(buggy_backend())
            .vendors(&[CpuVendor::Intel])
            .modes(&[mode])
            .seeds(0..3)
            .hours(HOURS)
            .execs_per_hour(EXECS_PER_HOUR)
            .sync_interval(1)
            .oracle(OracleMode::Differential)
            .diff_backends(&PAIR);
        let serial = CampaignExecutor::new().jobs(1).run(&plan);
        let parallel = CampaignExecutor::new().jobs(8).run(&plan);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(
                s, p,
                "differential {mode:?} job {i} diverged across jobs=1/jobs=8"
            );
        }
        // The grid must actually sync (the adoption path also feeds
        // the oracle) and the oracle must actually run.
        assert!(
            serial.iter().any(|r| r.adopted > 0),
            "{mode:?}: no exchange"
        );
        assert!(serial.iter().all(|r| r.diff_execs > 0));
    }
}

#[test]
fn lone_campaign_equals_never_and_final_boundary_synced_members() {
    let lone: Vec<_> = (0..3)
        .map(|seed| {
            run_campaign(
                backend_factory(SEEDED_HLT_BACKEND).expect("known backend"),
                &differential_cfg(seed),
            )
        })
        .collect();

    for sync_interval in [0, HOURS] {
        let plan = CampaignPlan::new()
            .backend(buggy_backend())
            .vendors(&[CpuVendor::Intel])
            .modes(&[Mode::Unguided])
            .seeds(0..3)
            .hours(HOURS)
            .execs_per_hour(EXECS_PER_HOUR)
            .sync_interval(sync_interval)
            .oracle(OracleMode::Differential)
            .diff_backends(&PAIR);
        let grouped = CampaignExecutor::new().jobs(4).run(&plan);
        assert_eq!(grouped.len(), lone.len());
        for (i, (member, plain)) in grouped.iter().zip(&lone).enumerate() {
            assert_eq!(
                member.divergence, plain.divergence,
                "interval {sync_interval}: divergence stats diverged for seed {i}"
            );
            assert_eq!(
                member, plain,
                "interval {sync_interval}: result diverged for seed {i}"
            );
        }
    }
}

#[test]
fn bench_diff_json_reproduces_byte_for_byte() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_diff.json");
    let committed =
        std::fs::read_to_string(path).expect("BENCH_diff.json is committed at the workspace root");
    let report = diff_bench::run(24, 120);
    assert_eq!(
        report.json, committed,
        "BENCH_diff.json drifted from the pipeline; regenerate with \
         `cargo run --release -p nf-bench --bin diff_oracle`"
    );
    // The committed artifact must witness the headline claims.
    assert!(report.seeded_found && report.replay_validated);
    assert_eq!(report.conformance.divergences, 0);
    assert_eq!(report.conformance_findings, 0);
    assert!(report.exploration_unchanged);
}
