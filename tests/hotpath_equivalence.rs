//! Hot-path equivalence: the zero-allocation exec loop must be
//! bit-identical to the allocating path it replaced.
//!
//! Two layers of evidence:
//!
//! 1. **Campaign grid vs the allocating driver.** A driver built on
//!    the compat pieces — `Fuzzer::next_input` (allocating) and
//!    `Agent::run_iteration_alloc` (fresh trace/bitmap/lines per exec)
//!    — replays the product campaign protocol, lone and synced, havoc
//!    and structured. Results, corpora, and triage must match the
//!    product path (`run_campaign` / `run_campaign_group`, which runs
//!    on `Fuzzer::next_input_into` + scratch-borrowing
//!    `run_iteration`) exactly.
//! 2. **Committed bench files.** `BENCH_sync.json` and
//!    `BENCH_mutators.json` were generated before this engine existed
//!    and are bit-reproducible; regenerating them through
//!    `nf_bench::{sync_bench, mutator_bench}` on the new hot path must
//!    reproduce the committed bytes exactly.

use necofuzz::campaign::{
    run_campaign, run_campaign_group, CampaignConfig, CampaignResult, GroupMember,
};
use necofuzz::{Agent, EngineMode};
use nf_bench::vkvm_factory as factory;
use nf_fuzz::{Fuzzer, Mode, MutationStrategy, SharedCorpus};
use nf_x86::CpuVendor;

/// A campaign driven entirely on the compat allocating path: the exact
/// loop `Campaign::run_hours` ships, with every scratch-reusing call
/// replaced by its allocating twin.
struct AllocCampaign {
    agent: Agent,
    fuzzer: Fuzzer,
    cfg: CampaignConfig,
    hourly: Vec<f64>,
    adopted: u64,
}

impl AllocCampaign {
    fn new(cfg: &CampaignConfig, worker: u32) -> Self {
        let agent = Agent::with_engine(factory(), cfg.vendor, cfg.mask, cfg.engine);
        let mut fuzzer = Fuzzer::with_strategy(cfg.seed, cfg.mode, cfg.strategy);
        fuzzer.set_worker(worker);
        AllocCampaign {
            agent,
            fuzzer,
            cfg: cfg.clone(),
            hourly: Vec::new(),
            adopted: 0,
        }
    }

    fn run_hours(&mut self, n: u32) {
        for _ in 0..n {
            for _ in 0..self.cfg.execs_per_hour {
                let input = self.fuzzer.next_input();
                let result = self.agent.run_iteration_alloc(&input);
                self.fuzzer
                    .report_observed(&input, &result.bitmap, &result.lines, result.feedback);
            }
            self.hourly.push(self.agent.coverage_fraction());
        }
    }

    fn adopt(&mut self, shared: &SharedCorpus) {
        let inputs = shared.adopt_into(self.fuzzer.corpus_mut());
        for input in &inputs {
            let result = self.agent.run_iteration_alloc(input);
            self.fuzzer
                .report_observed(input, &result.bitmap, &result.lines, result.feedback);
        }
        self.adopted += inputs.len() as u64;
    }

    /// Asserts this alloc-path campaign landed exactly where the
    /// product result did.
    fn assert_matches(&self, product: &CampaignResult, label: &str) {
        let got: Vec<f64> = product.hourly.iter().map(|h| h.coverage).collect();
        assert_eq!(self.hourly, got, "{label}: hourly coverage diverged");
        assert_eq!(
            self.agent.coverage_fraction(),
            product.final_coverage,
            "{label}: final coverage diverged"
        );
        assert_eq!(
            self.agent.cumulative, product.lines,
            "{label}: covered-line sets diverged"
        );
        assert_eq!(self.agent.execs(), product.execs, "{label}: execs diverged");
        assert_eq!(
            self.agent.restarts(),
            product.restarts,
            "{label}: restarts diverged"
        );
        assert_eq!(
            self.agent.triage().finds(),
            &product.finds[..],
            "{label}: triage diverged"
        );
        assert_eq!(
            self.fuzzer.corpus(),
            &product.corpus,
            "{label}: corpora diverged"
        );
        assert_eq!(self.adopted, product.adopted, "{label}: adoptions diverged");
    }
}

/// The seeded grid: both strategies, plus the product-default unguided
/// mode, each as a lone campaign and as a 2-worker hourly-synced group.
fn grid() -> Vec<(&'static str, CampaignConfig)> {
    let base = |seed| {
        CampaignConfig::necofuzz(CpuVendor::Intel, 5, seed)
            .with_execs_per_hour(40)
            .with_engine(EngineMode::Snapshot)
    };
    vec![
        ("unguided/havoc", base(3)),
        (
            "guided/havoc",
            base(4)
                .with_mode(Mode::Guided)
                .with_strategy(MutationStrategy::Havoc),
        ),
        (
            "guided/structured",
            base(5)
                .with_mode(Mode::Guided)
                .with_strategy(MutationStrategy::Structured),
        ),
    ]
}

#[test]
fn lone_campaigns_match_the_allocating_path() {
    for (label, cfg) in grid() {
        let product = run_campaign(factory(), &cfg);
        let mut alloc = AllocCampaign::new(&cfg, 0);
        alloc.run_hours(cfg.hours);
        alloc.assert_matches(&product, label);
    }
}

#[test]
fn synced_groups_match_the_allocating_path() {
    for (label, cfg) in grid() {
        let cfg = cfg.with_sync_interval(1);
        let members: Vec<GroupMember> = (0..2)
            .map(|w| {
                let mut m = cfg.clone();
                m.seed = cfg.seed + w;
                (factory(), m)
            })
            .collect();
        let product = run_campaign_group(members);

        // Replay the exact group protocol (lockstep hours, publish →
        // commit → adopt at interior boundaries) on the alloc path.
        let mut campaigns: Vec<AllocCampaign> = (0..2u32)
            .map(|w| {
                let mut m = cfg.clone();
                m.seed = cfg.seed + u64::from(w);
                let mut c = AllocCampaign::new(&m, w);
                c.fuzzer.set_recording(true);
                c
            })
            .collect();
        let shared = SharedCorpus::new();
        for done in 1..=cfg.hours {
            for c in &mut campaigns {
                c.run_hours(1);
            }
            if done < cfg.hours && done % cfg.sync_interval == 0 {
                for c in &mut campaigns {
                    let delta = c.fuzzer.corpus_mut().take_delta();
                    shared.publish(delta);
                }
                shared.commit_epoch();
                for c in &mut campaigns {
                    c.adopt(&shared);
                }
            }
        }
        for (worker, (alloc, result)) in campaigns.iter().zip(&product).enumerate() {
            alloc.assert_matches(result, &format!("{label} synced worker {worker}"));
        }
    }
}

/// The committed bench files were produced by the pre-scratch engine;
/// regenerating them on the new hot path must reproduce every byte.
#[test]
fn bench_sync_json_reproduces_byte_for_byte() {
    let committed =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_sync.json"))
            .expect("committed BENCH_sync.json");
    let report = nf_bench::sync_bench::run(24, 120);
    assert_eq!(
        report.json, committed,
        "BENCH_sync.json no longer reproduces on the new hot path"
    );
}

#[test]
fn bench_mutators_json_reproduces_byte_for_byte() {
    let committed =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_mutators.json"))
            .expect("committed BENCH_mutators.json");
    let report = nf_bench::mutator_bench::run(24, 120, &nf_bench::mutator_bench::SEEDS);
    assert_eq!(
        report.json, committed,
        "BENCH_mutators.json no longer reproduces on the new hot path"
    );
}
