//! Mutation-strategy determinism: introducing the structured scenario
//! engine must not perturb the original havoc engine by a single bit.
//!
//! 1. **havoc == default**: `--mutator havoc` (the explicit strategy)
//!    reproduces the default-configured campaigns — guided and
//!    unguided, lone and synced — bit-identically, corpora included.
//!    Together with the `sync_determinism` and `engine_equivalence`
//!    suites (which run the default path) this pins the havoc stream
//!    to its pre-structured behavior.
//! 2. **structured is deterministic**: a structured campaign is a pure
//!    function of its config, and genuinely different from havoc.

use necofuzz::campaign::{run_campaign, run_campaign_group, CampaignConfig, GroupMember};
use necofuzz::MutationStrategy;
use nf_fuzz::Mode;
use nf_hv::Vkvm;
use nf_x86::CpuVendor;

const HOURS: u32 = 3;
const EXECS_PER_HOUR: u32 = 40;

fn factory() -> necofuzz::campaign::HvFactory {
    Box::new(|c| Box::new(Vkvm::new(c)))
}

fn cfg(seed: u64, mode: Mode) -> CampaignConfig {
    CampaignConfig::necofuzz(CpuVendor::Intel, HOURS, seed)
        .with_execs_per_hour(EXECS_PER_HOUR)
        .with_mode(mode)
}

#[test]
fn explicit_havoc_reproduces_default_campaigns_bit_identically() {
    for mode in [Mode::Guided, Mode::Unguided] {
        for seed in 0..3 {
            let default = run_campaign(factory(), &cfg(seed, mode));
            let explicit = run_campaign(
                factory(),
                &cfg(seed, mode).with_strategy(MutationStrategy::Havoc),
            );
            assert_eq!(
                default, explicit,
                "--mutator havoc diverged from the default ({mode:?}, seed {seed})"
            );
            assert_eq!(default.corpus, explicit.corpus);
        }
    }
}

#[test]
fn explicit_havoc_reproduces_synced_groups_bit_identically() {
    let members = |strategy: Option<MutationStrategy>| -> Vec<GroupMember> {
        (0..3)
            .map(|seed| {
                let mut c = cfg(seed, Mode::Guided).with_sync_interval(1);
                if let Some(s) = strategy {
                    c = c.with_strategy(s);
                }
                (factory(), c)
            })
            .collect()
    };
    let default = run_campaign_group(members(None));
    let explicit = run_campaign_group(members(Some(MutationStrategy::Havoc)));
    assert_eq!(default, explicit, "synced havoc group diverged");
    assert!(
        default.iter().any(|r| r.adopted > 0),
        "the group must actually exchange corpus entries"
    );
}

#[test]
fn structured_campaigns_are_deterministic_and_distinct_from_havoc() {
    let structured = |seed| {
        run_campaign(
            factory(),
            &cfg(seed, Mode::Guided).with_strategy(MutationStrategy::Structured),
        )
    };
    let a = structured(1);
    let b = structured(1);
    assert_eq!(a, b, "structured runs must be pure functions of the config");

    let havoc = run_campaign(factory(), &cfg(1, Mode::Guided));
    assert_ne!(
        a.lines, havoc.lines,
        "the two strategies must explore differently"
    );
    // The seed corpus and RNG stream are shared; only the
    // parent→child transform differs — so execs line up exactly.
    assert_eq!(a.execs, havoc.execs);
}

#[test]
fn unguided_campaigns_ignore_the_strategy() {
    // Unguided generation never consults a queue parent, so the
    // strategy must be inert there.
    let havoc = run_campaign(factory(), &cfg(2, Mode::Unguided));
    let structured = run_campaign(
        factory(),
        &cfg(2, Mode::Unguided).with_strategy(MutationStrategy::Structured),
    );
    assert_eq!(havoc.hourly, structured.hourly);
    assert_eq!(havoc.lines, structured.lines);
    assert_eq!(havoc.finds, structured.finds);
}
