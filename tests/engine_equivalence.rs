//! Engine equivalence: the snapshot-based persistent-execution engine
//! must be **bit-identical** to the original full-rebuild path.
//!
//! A 24-virtual-hour campaign is run twice — once per
//! [`necofuzz::EngineMode`] — for every backend × vendor × feedback
//! mode × component mask cell, and the two [`CampaignResult`]s are
//! compared with `==` (hourly samples, line sets, coverage map, finds,
//! exec/restart counters: everything). The grid fans out through the
//! orchestrator, so this doubles as a parallel-execution check.

use necofuzz::orchestrator::{Backend, CampaignExecutor, CampaignPlan};
use necofuzz::{ComponentMask, EngineMode};
use nf_fuzz::Mode;
use nf_hv::{Vkvm, Vvbox, Vxen};
use nf_x86::CpuVendor;

/// The ablation masks of Table 3 plus the two extremes.
fn masks() -> Vec<ComponentMask> {
    vec![
        ComponentMask::ALL,
        ComponentMask {
            harness: false,
            ..ComponentMask::ALL
        },
        ComponentMask {
            validator: false,
            ..ComponentMask::ALL
        },
        ComponentMask {
            configurator: false,
            ..ComponentMask::ALL
        },
        ComponentMask::NONE,
    ]
}

fn plan(engine: EngineMode, backend: Backend, vendors: &[CpuVendor]) -> CampaignPlan {
    CampaignPlan::new()
        .backend(backend)
        .vendors(vendors)
        .modes(&[Mode::Unguided, Mode::Guided])
        .masks(&masks())
        .seeds([1])
        .hours(24)
        .execs_per_hour(20)
        .engine(engine)
}

fn assert_equivalent(backend: fn() -> Backend, vendors: &[CpuVendor]) {
    let executor = CampaignExecutor::new();
    let snapshot = executor.run(&plan(EngineMode::Snapshot, backend(), vendors));
    let rebuild = executor.run(&plan(EngineMode::Rebuild, backend(), vendors));
    assert_eq!(snapshot.len(), rebuild.len());
    let labels: Vec<String> = plan(EngineMode::Snapshot, backend(), vendors)
        .jobs()
        .iter()
        .map(|j| j.label())
        .collect();
    for ((s, r), label) in snapshot.iter().zip(&rebuild).zip(&labels) {
        assert_eq!(s, r, "campaign diverged between engines: {label}");
    }
    // The grid must exercise the interesting paths, not degenerate ones.
    assert!(snapshot.iter().all(|r| r.execs == 24 * 20));
    assert!(snapshot.iter().any(|r| r.final_coverage > 0.3));
}

#[test]
fn vkvm_campaigns_match_across_engines() {
    assert_equivalent(
        || Backend::new("vkvm", |c| Box::new(Vkvm::new(c))),
        &[CpuVendor::Intel, CpuVendor::Amd],
    );
}

#[test]
fn vxen_campaigns_match_across_engines() {
    assert_equivalent(
        || Backend::new("vxen", |c| Box::new(Vxen::new(c))),
        &[CpuVendor::Intel, CpuVendor::Amd],
    );
}

#[test]
fn vvbox_campaigns_match_across_engines() {
    assert_equivalent(
        || Backend::new("vvbox", |c| Box::new(Vvbox::new(c))),
        &[CpuVendor::Intel],
    );
}
