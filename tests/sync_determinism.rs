//! Sync determinism: corpus sharing must not cost the orchestrator its
//! two core guarantees.
//!
//! 1. **serial == parallel**: a synced grid run with `jobs(1)` is
//!    element-for-element identical to the same grid with `jobs(8)` —
//!    the `SyncGroup` is the scheduling unit, so worker count cannot
//!    reorder the delta exchanges.
//! 2. **off == never == final-boundary**: `sync_interval = 0` (never
//!    sync) and `sync_interval = hours` (the only boundary is the end
//!    of the budget, where an exchange could not influence any
//!    execution) both reproduce today's unsynced results bit-for-bit.

use necofuzz::campaign::{run_campaign, CampaignConfig};
use necofuzz::orchestrator::{Backend, CampaignExecutor, CampaignPlan};
use nf_fuzz::Mode;
use nf_hv::{Vkvm, Vxen};
use nf_x86::CpuVendor;

const HOURS: u32 = 3;
const EXECS_PER_HOUR: u32 = 40;

fn grid(mode: Mode, sync_interval: u32) -> CampaignPlan {
    CampaignPlan::new()
        .backend(Backend::new("vkvm", |c| Box::new(Vkvm::new(c))))
        .backend(Backend::new("vxen", |c| Box::new(Vxen::new(c))))
        .vendors(&[CpuVendor::Intel, CpuVendor::Amd])
        .modes(&[mode])
        .seeds(0..3)
        .hours(HOURS)
        .execs_per_hour(EXECS_PER_HOUR)
        .sync_interval(sync_interval)
}

#[test]
fn synced_grid_serial_equals_parallel() {
    for mode in [Mode::Guided, Mode::Unguided] {
        let plan = grid(mode, 1);
        let serial = CampaignExecutor::new().jobs(1).run(&plan);
        let parallel = CampaignExecutor::new().jobs(8).run(&plan);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(
                s, p,
                "synced {mode:?} job {i} diverged across jobs=1/jobs=8"
            );
        }
        // The grid must actually share: each (backend, vendor) cell
        // syncs its three seeds.
        assert!(
            serial.iter().any(|r| r.adopted > 0),
            "{mode:?} grid exchanged nothing"
        );
    }
}

#[test]
fn never_sync_and_final_boundary_sync_match_unsynced_results() {
    // "Today's results": plain run_campaign, no sync machinery at all.
    let unsynced: Vec<_> = (0..3)
        .map(|seed| {
            let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, HOURS, seed)
                .with_execs_per_hour(EXECS_PER_HOUR)
                .with_mode(Mode::Guided);
            run_campaign(Box::new(|c| Box::new(Vkvm::new(c))), &cfg)
        })
        .collect();

    for sync_interval in [0, HOURS] {
        let plan = CampaignPlan::new()
            .backend(Backend::new("vkvm", |c| Box::new(Vkvm::new(c))))
            .vendors(&[CpuVendor::Intel])
            .modes(&[Mode::Guided])
            .seeds(0..3)
            .hours(HOURS)
            .execs_per_hour(EXECS_PER_HOUR)
            .sync_interval(sync_interval);
        let results = CampaignExecutor::new().jobs(4).run(&plan);
        assert_eq!(results.len(), unsynced.len());
        for (i, (synced, plain)) in results.iter().zip(&unsynced).enumerate() {
            assert_eq!(
                synced.hourly, plain.hourly,
                "interval {sync_interval}: hourly curve diverged for seed {i}"
            );
            assert_eq!(
                synced.lines, plain.lines,
                "interval {sync_interval}, seed {i}"
            );
            assert_eq!(
                synced.finds, plain.finds,
                "interval {sync_interval}, seed {i}"
            );
            assert_eq!(
                synced.execs, plain.execs,
                "interval {sync_interval}, seed {i}"
            );
            assert_eq!(
                synced.restarts, plain.restarts,
                "interval {sync_interval}, seed {i}"
            );
            assert_eq!(synced.adopted, 0, "interval {sync_interval}, seed {i}");
            // Full structural equality — the corpus too: a never-
            // exchanging group must not leak worker ids or forced
            // recording into its members.
            assert_eq!(
                synced, plain,
                "interval {sync_interval}: result diverged for seed {i}"
            );
        }
    }
}

#[test]
fn synced_fleet_members_converge_on_shared_coverage() {
    // The point of the exchange: with replay-on-adopt, every member of
    // a synced cell ends at least as covered as its unsynced twin, and
    // the worst member improves strictly (the fleet pools discoveries).
    let unsynced = CampaignExecutor::new()
        .jobs(1)
        .run(&grid(Mode::Unguided, 0));
    let synced = CampaignExecutor::new()
        .jobs(1)
        .run(&grid(Mode::Unguided, 1));
    let min = |rs: &[necofuzz::CampaignResult]| {
        rs.iter()
            .map(|r| r.final_coverage)
            .fold(f64::INFINITY, f64::min)
    };
    assert!(
        min(&synced) > min(&unsynced),
        "worst synced member {:.4} must beat worst unsynced member {:.4}",
        min(&synced),
        min(&unsynced)
    );
}
