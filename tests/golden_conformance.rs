//! Golden-model conformance suite: across random scenarios, agent
//! configurations, vendors, and engine modes, `vkvm` must show its L1
//! guest exactly what the bare-metal [`nf_hv::SiliconGolden`] model
//! would — every divergence must fall under the explicit
//! intentional-quirk [`necofuzz::ALLOWLIST`]. A single non-allowlisted
//! divergence here is a false positive of the differential oracle
//! (and would poison every campaign that arms it).
//!
//! `vxen`/`vvbox` are deliberately *not* conformance targets: their
//! models encode real misbehavior (Xen's activity-state passthrough,
//! VirtualBox's missing MSR-load checks), so their divergences against
//! golden are true positives the oracle exists to find.

use necofuzz::differential::{allowed_by, DifferentialRunner, DivergenceSite, ObsResult};
use necofuzz::{ComponentMask, EngineMode, ALLOWLIST};
use nf_fuzz::FuzzInput;
use nf_x86::CpuVendor;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn conformance_pair() -> Vec<String> {
    vec!["vkvm".to_string(), "golden".to_string()]
}

/// Component-mask grid: the full agent plus each component ablated —
/// conformance may not depend on which scenario generator produced the
/// input.
fn masks() -> [ComponentMask; 4] {
    let ablate = |f: fn(&mut ComponentMask)| {
        let mut m = ComponentMask::ALL;
        f(&mut m);
        m
    };
    [
        ComponentMask::ALL,
        ablate(|m| m.harness = false),
        ablate(|m| m.validator = false),
        ablate(|m| m.configurator = false),
    ]
}

/// Runs `execs` random inputs through the conformance pair and asserts
/// every divergence was allowlisted (no triage findings).
fn assert_conformant(
    seed: u64,
    vendor: CpuVendor,
    mask: ComponentMask,
    engine: EngineMode,
    execs: u64,
) {
    let mut runner = DifferentialRunner::new(&conformance_pair(), vendor, mask, engine);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut input = FuzzInput::zeroed();
    for exec in 0..execs {
        input.fill_random(&mut rng);
        runner.observe_exec(&input, exec);
    }
    let findings: Vec<String> = runner
        .triage()
        .iter()
        .map(|f| format!("{} ({})", f.bug_id, f.message))
        .collect();
    assert!(
        findings.is_empty(),
        "non-allowlisted vkvm/golden divergence under seed={seed} vendor={vendor} \
         engine={engine} mask={mask:?}: {findings:?}"
    );
    assert_eq!(runner.stats().divergences, 0);
    assert_eq!(runner.stats().execs_compared, execs);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The conformance grid: random seed x vendor x engine x component
    /// mask, each cell diffing a batch of random scenarios.
    #[test]
    fn vkvm_conforms_to_golden(
        seed in any::<u64>(),
        amd in any::<bool>(),
        rebuild in any::<bool>(),
        mask_idx in 0usize..4,
    ) {
        let vendor = if amd { CpuVendor::Amd } else { CpuVendor::Intel };
        let engine = if rebuild { EngineMode::Rebuild } else { EngineMode::Snapshot };
        assert_conformant(seed, vendor, masks()[mask_idx], engine, 50);
    }
}

#[test]
fn conformance_holds_over_a_long_run_and_exercises_the_allowlist() {
    let mut runner = DifferentialRunner::new(
        &conformance_pair(),
        CpuVendor::Intel,
        ComponentMask::ALL,
        EngineMode::Snapshot,
    );
    let mut rng = SmallRng::seed_from_u64(0);
    let mut input = FuzzInput::zeroed();
    for exec in 0..1000u64 {
        input.fill_random(&mut rng);
        runner.observe_exec(&input, exec);
    }
    let stats = runner.stats();
    assert!(
        runner.triage().is_empty(),
        "false positive on the clean pair"
    );
    assert_eq!(stats.divergences, 0);
    // The run is long enough that the intentional quirks actually
    // occur — an allowlist nothing ever matches would be untested dead
    // weight — and some executions crash (owned by the sanitizers).
    assert!(stats.allowed > 0, "allowlist never exercised: {stats:?}");
    assert!(
        stats.crash_skipped > 0,
        "crash-skip never exercised: {stats:?}"
    );
}

#[test]
fn allowlist_is_the_reviewed_two_rule_table() {
    // The table is policy, reviewed rule by rule: additions must be
    // deliberate (update this list alongside the docs), and every rule
    // carries its justification.
    let names: Vec<&str> = ALLOWLIST.iter().map(|r| r.name).collect();
    assert_eq!(names, ["l0-entry-hardening", "entry-check-order"]);
    for rule in ALLOWLIST {
        assert!(
            !rule.why.is_empty(),
            "rule {} is missing its justification",
            rule.name
        );
    }
    // Spot-check the policy's teeth: an exit-reason disagreement is
    // never an intentional quirk, on any orientation of any pair.
    let reflected = DivergenceSite::Event {
        index: 0,
        a: ObsResult::Reflected(0x28),
        b: ObsResult::Reflected(0xc),
    };
    for (a, b) in [("vkvm", "golden"), ("golden", "vkvm"), ("vkvm", "vxen")] {
        assert!(allowed_by(a, b, &reflected).is_none());
    }
}
