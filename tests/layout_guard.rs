//! Layout guard: `InputLayout` (in `nf_fuzz::scenario`) is the *only*
//! place allowed to state the fuzz-input partition. This grep-style
//! test walks every Rust source in the workspace and fails if a raw
//! section offset — or the pre-refactor `sections::` module — ever
//! creeps back in, so the mutation side (fuzz) and the decode side
//! (harness/validator/configurator) can never drift apart again.

use std::path::{Path, PathBuf};

/// The section start offsets of the 2 KiB layout that are distinctive
/// enough to grep for (META/INIT starts of 0/8 are hopeless as
/// literals; these five uniquely identify the partition). Derived from
/// the live schema so the guard follows any future layout change.
fn forbidden_offsets() -> Vec<String> {
    use nf_fuzz::InputLayout;
    [
        InputLayout::RUNTIME.offset,   //   72
        InputLayout::VMCS_SEED.offset, //  392
        InputLayout::MUTATE.offset,    // 1392
        InputLayout::VCPU_CFG.offset,  // 1420
        InputLayout::MSR_AREA.offset,  // 1428
    ]
    .iter()
    .map(usize::to_string)
    .collect()
}

/// Collects every `.rs` file under `dir`, recursively.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Build outputs hold generated/duplicated sources.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// `true` when `needle` occurs in `hay` as a standalone decimal number:
/// not a digit-run substring (the `392` inside `1392`), not part of a
/// wider literal (`3920`, `1_392`, `0.1392`), and not inside a hex
/// literal or identifier (`0x72`, `foo72`). A trailing type suffix
/// (`1392usize`) still counts — that is a real offset literal.
fn contains_standalone_number(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let before_ok = |b: u8| !(b.is_ascii_alphanumeric() || b == b'_' || b == b'.');
    let after_ok = |b: u8| !(b.is_ascii_digit() || b == b'_' || b == b'.');
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        if (start == 0 || before_ok(bytes[start - 1]))
            && (end == bytes.len() || after_ok(bytes[end]))
        {
            return true;
        }
        from = start + 1;
    }
    false
}

#[test]
fn no_raw_section_offsets_outside_input_layout() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    for dir in ["crates", "tests", "examples", "src"] {
        rust_sources(&root.join(dir), &mut sources);
    }
    assert!(
        sources.len() > 40,
        "the scan must actually see the workspace, found {} files",
        sources.len()
    );

    let offsets = forbidden_offsets();
    let mut violations = Vec::new();
    for path in &sources {
        let text = std::fs::read_to_string(path).expect("read source");
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .display()
            .to_string();
        // The shims vendor third-party API surface; their numerology
        // (RNG constants etc.) has nothing to do with the input layout.
        if rel.starts_with("crates/shims") {
            continue;
        }
        if rel == "tests/layout_guard.rs" {
            continue; // this file names the offsets in its comments
        }
        if text.contains("sections::") {
            violations.push(format!("{rel}: resurrects the old `sections` module"));
        }
        for (line_no, line) in text.lines().enumerate() {
            let code = line.split("//").next().unwrap_or(line);
            for offset in &offsets {
                if contains_standalone_number(code, offset) {
                    violations.push(format!(
                        "{rel}:{}: raw section offset {offset}: {}",
                        line_no + 1,
                        line.trim()
                    ));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "section offsets must come from InputLayout, never literals:\n{}",
        violations.join("\n")
    );
}

#[test]
fn guard_scanner_detects_planted_violations() {
    // The guard is only as good as its scanner: prove it would fire.
    assert!(contains_standalone_number("let x = 1392;", "1392"));
    assert!(contains_standalone_number("slice(1392, 28)", "1392"));
    assert!(contains_standalone_number("1392usize", "1392"));
    assert!(!contains_standalone_number("let x = 1392;", "392"));
    assert!(!contains_standalone_number("let x = 13920;", "1392"));
    assert!(!contains_standalone_number("let x = 1_392;", "392"));
    assert!(!contains_standalone_number("0.1392", "1392"));
    assert!(!contains_standalone_number("Cpuid = 0x72,", "72"));
    assert!(!contains_standalone_number("foo72(1)", "72"));
}
